package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vm_run_cnt", L("prog", "x"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same name+labels returns the same series.
	if r.Counter("vm_run_cnt", L("prog", "x")) != c {
		t.Fatal("counter series not deduplicated")
	}
	// Label order must not split series.
	c2 := r.Counter("ops", L("a", "1"), L("b", "2"))
	c2.Inc()
	if r.Counter("ops", L("b", "2"), L("a", "1")).Value() != 1 {
		t.Fatal("label order split the series")
	}
	g := r.Gauge("pps")
	g.Set(1.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("m")
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("vm_run_cnt", L("prog", "cms")).Add(7)
	r.Counter("vm_run_cnt", L("prog", "bloom")).Add(3)
	r.Gauge("nf_pps", L("nf", "cms")).Set(123456.5)
	h := r.Histogram("lat_ns", []float64{10, 100}, L("nf", "cms"))
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	r.SetHelp("vm_run_cnt", "program invocations")

	text := r.Text()
	for _, want := range []string{
		"# HELP vm_run_cnt program invocations",
		"# TYPE vm_run_cnt counter",
		`vm_run_cnt{prog="bloom"} 3`,
		`vm_run_cnt{prog="cms"} 7`,
		"# TYPE nf_pps gauge",
		`nf_pps{nf="cms"} 123456.5`,
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{nf="cms",le="10"} 1`,
		`lat_ns_bucket{nf="cms",le="100"} 2`,
		`lat_ns_bucket{nf="cms",le="+Inf"} 3`,
		`lat_ns_sum{nf="cms"} 555`,
		`lat_ns_count{nf="cms"} 3`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Deterministic: same registry renders identically and families are
	// name-sorted.
	if text != r.Text() {
		t.Fatal("exposition text not deterministic")
	}
	if strings.Index(text, "lat_ns") > strings.Index(text, "vm_run_cnt") {
		t.Fatal("families not sorted by name")
	}
	// bloom sorts before cms within the family.
	if strings.Index(text, `prog="bloom"`) > strings.Index(text, `prog="cms"`) {
		t.Fatal("series not sorted by labels")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("k", "a\"b\\c\nd")).Inc()
	text := r.Text()
	if !strings.Contains(text, `c{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped: %s", text)
	}
}

func TestQuantileRankInterpolation(t *testing.T) {
	cases := []struct {
		xs   []float64
		p    float64
		want float64
	}{
		{[]float64{1, 2, 3, 4}, 0.5, 2.5}, // interpolates between ranks
		{[]float64{1, 2, 3, 4}, 0.99, 3.97},
		{[]float64{1, 2, 3, 4}, 0, 1},
		{[]float64{1, 2, 3, 4}, 1, 4},
		{[]float64{7}, 0.99, 7},
		{[]float64{0, 100}, 0.25, 25},
	}
	for _, c := range cases {
		got := Quantile(c.xs, c.p)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v, %v) = %v, want %v", c.xs, c.p, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	// The old floor-index math returned xs[int(0.99*3)] = xs[2] = 3 for
	// the 4-sample p99 — the bias this function fixes.
	if q := Quantile([]float64{1, 2, 3, 4}, 0.99); q <= 3 {
		t.Errorf("p99 = %v still floor-biased", q)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40, 80})
	for v := 1.0; v <= 80; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 80 || s.Min != 1 || s.Max != 80 {
		t.Fatalf("snapshot basics: %+v", s)
	}
	if math.Abs(s.Mean-40.5) > 1e-9 {
		t.Fatalf("mean = %v, want 40.5", s.Mean)
	}
	// Uniform 1..80 over bounds 10/20/40/80: p50 should land near 40,
	// p99 near 80 (bucket interpolation, so allow slack).
	if s.P50 < 30 || s.P50 > 50 {
		t.Fatalf("p50 = %v, want ~40", s.P50)
	}
	if s.P99 < 70 || s.P99 > 80 {
		t.Fatalf("p99 = %v, want ~79", s.P99)
	}
	// Values beyond the last bound land in +Inf and cap at max.
	h2 := NewHistogram([]float64{10})
	h2.Observe(1000)
	if got := h2.Snapshot().P99; got != 1000 {
		t.Fatalf("+Inf bucket p99 = %v, want 1000 (observed max)", got)
	}
	empty := NewHistogram(nil).Snapshot()
	if empty.Count != 0 || empty.Mean != 0 || empty.Min != 0 {
		t.Fatalf("empty snapshot: %+v", empty)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared", L("cpu", "all")).Inc()
				r.Histogram("h", nil, L("cpu", "all")).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared", L("cpu", "all")).Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(100, 2, 4)
	want := []float64{100, 200, 400, 800}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

// TestHistogramBucketBoundaries pins Prometheus bucket semantics for the
// exported latency histograms: bounds are inclusive upper edges, bucket
// lines are cumulative, and values above the top bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("nf_latency_ns", []float64{1, 2, 4}, L("nf", "t"))
	h.Observe(1)   // exactly on a bound: le="1"
	h.Observe(1.5) // inside (1,2]: le="2"
	h.Observe(4)   // exactly on the top bound: le="4"
	h.Observe(5)   // above every bound: +Inf only
	text := r.Text()
	for _, want := range []string{
		`nf_latency_ns_bucket{nf="t",le="1"} 1`,
		`nf_latency_ns_bucket{nf="t",le="2"} 2`,
		`nf_latency_ns_bucket{nf="t",le="4"} 3`,
		`nf_latency_ns_bucket{nf="t",le="+Inf"} 4`,
		`nf_latency_ns_sum{nf="t"} 11.5`,
		`nf_latency_ns_count{nf="t"} 4`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 4})
	b := NewHistogram([]float64{1, 2, 4})
	a.Observe(0.5)
	a.Observe(3)
	b.Observe(8)
	a.Merge(b)
	s := a.Snapshot()
	if s.Count != 3 || s.Sum != 11.5 || s.Min != 0.5 || s.Max != 8 {
		t.Fatalf("merged snapshot: %+v", s)
	}
	// Merging an empty histogram must not disturb extrema.
	a.Merge(NewHistogram([]float64{1, 2, 4}))
	if s2 := a.Snapshot(); s2.Min != 0.5 || s2.Max != 8 {
		t.Fatalf("empty merge disturbed extrema: %+v", s2)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched-bounds merge did not panic")
		}
	}()
	a.Merge(NewHistogram([]float64{1, 2}))
}

func TestRegistryMerge(t *testing.T) {
	static := NewRegistry()
	static.Counter("hits", L("nf", "a")).Add(3)
	static.SetHelp("hits", "hit count")
	static.Gauge("level").Set(2.5)
	static.Histogram("lat", []float64{1, 2}, L("nf", "a")).Observe(1)

	scrape := NewRegistry()
	scrape.Counter("hits", L("nf", "a")).Add(4)
	scrape.Counter("scrape_only").Inc()
	scrape.Merge(static)

	if got := scrape.Counter("hits", L("nf", "a")).Value(); got != 7 {
		t.Fatalf("merged counter = %d, want 7", got)
	}
	if got := scrape.Gauge("level").Value(); got != 2.5 {
		t.Fatalf("merged gauge = %g", got)
	}
	text := scrape.Text()
	for _, want := range []string{
		"# HELP hits hit count",
		`lat_count{nf="a"} 1`,
		"scrape_only 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("merged exposition missing %q:\n%s", want, text)
		}
	}
	// Self-merge and nil-merge are no-ops.
	scrape.Merge(scrape)
	scrape.Merge(nil)
	if got := scrape.Counter("hits", L("nf", "a")).Value(); got != 7 {
		t.Fatalf("self-merge doubled counter: %d", got)
	}
}
