// Package telemetry is a dependency-free metrics layer for the eNetSTL
// reproduction: counters, gauges, and fixed-bucket histograms organised
// into labelled metric families, plus a Prometheus-style text exposition
// writer. It is the in-VM analogue of the kernel's bpf_stats plumbing —
// the VM, the BPF maps, and the benchmark harness all publish into it,
// and `nfrun -stats` / `enetstl-bench -stats` dump it after a run.
//
// All metric types are safe for concurrent use (per-CPU VMs run on
// separate goroutines); the hot-path operations are a single atomic
// add. Construction and exposition take the registry lock.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key="value" pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Kind discriminates the metric types a family can hold.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type family struct {
	name   string
	help   string
	kind   Kind
	series map[string]*series
}

// Registry holds metric families keyed by name. The zero value is not
// usable; construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey renders labels into a canonical series key (sorted by label
// key so registration order does not split series).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteString(`"`)
	}
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func sortLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func (r *Registry) getSeries(name string, kind Kind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	ls := sortLabels(labels)
	key := labelKey(ls)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: ls}
		switch kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		}
		f.series[key] = s
	}
	return s
}

// Counter returns (creating if needed) the counter series for
// name+labels. Requesting an existing name with a different kind panics.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.getSeries(name, KindCounter, labels).c
}

// Gauge returns (creating if needed) the gauge series for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.getSeries(name, KindGauge, labels).g
}

// Histogram returns (creating if needed) the histogram series for
// name+labels. bounds applies only on first creation of the series; nil
// selects DefaultLatencyBuckets.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	s := r.getSeries(name, KindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = NewHistogram(bounds)
	}
	return s.h
}

// MergeHistogram folds src's observations into the named histogram
// series, creating it with src's bucket bounds when absent. This is how
// harness latency histograms become nf_latency_ns series.
func (r *Registry) MergeHistogram(name string, src *Histogram, labels ...Label) {
	if src == nil {
		return
	}
	bounds, _, _, _ := src.buckets()
	r.Histogram(name, bounds, labels...).Merge(src)
}

// Merge folds every series of src into r: counters add, gauges take
// src's current value, histograms merge observation-wise, and help
// strings fill in where r has none. The obs server uses it to combine
// per-scrape gatherer output with its long-lived registry without
// emitting duplicate families.
func (r *Registry) Merge(src *Registry) {
	if src == nil || src == r {
		return
	}
	type entry struct {
		name   string
		help   string
		kind   Kind
		labels []Label
		c      uint64
		g      float64
		h      *Histogram
	}
	src.mu.Lock()
	var entries []entry
	for _, f := range src.families {
		for _, s := range f.series {
			e := entry{name: f.name, help: f.help, kind: f.kind, labels: s.labels}
			switch f.kind {
			case KindCounter:
				e.c = s.c.Value()
			case KindGauge:
				e.g = s.g.Value()
			case KindHistogram:
				e.h = s.h
			}
			entries = append(entries, e)
		}
	}
	src.mu.Unlock()
	for _, e := range entries {
		switch e.kind {
		case KindCounter:
			r.Counter(e.name, e.labels...).Add(e.c)
		case KindGauge:
			r.Gauge(e.name, e.labels...).Set(e.g)
		case KindHistogram:
			r.MergeHistogram(e.name, e.h, e.labels...)
		}
		if e.help != "" {
			r.SetHelp(e.name, e.help)
		}
	}
}

// SetHelp attaches a `# HELP` line to the family (created lazily if the
// family does not exist yet the help is kept until it does).
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
	}
}

// formatValue renders a sample value: integral values without exponent,
// the rest in %g.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func sampleLine(sb *strings.Builder, name, labels string, value string) {
	sb.WriteString(name)
	if labels != "" {
		sb.WriteByte('{')
		sb.WriteString(labels)
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(value)
	sb.WriteByte('\n')
}

// WriteText writes the whole registry in Prometheus text exposition
// format: families sorted by name, series sorted by label signature, so
// output is deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	_, err := io.WriteString(w, r.Text())
	return err
}

// Text renders the exposition text (see WriteText).
func (r *Registry) Text() string {
	r.mu.Lock()
	defer r.mu.Unlock()

	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)

	var sb strings.Builder
	for _, n := range names {
		f := r.families[n]
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case KindCounter:
				sampleLine(&sb, f.name, k, fmt.Sprintf("%d", s.c.Value()))
			case KindGauge:
				sampleLine(&sb, f.name, k, formatValue(s.g.Value()))
			case KindHistogram:
				writeHistogram(&sb, f.name, k, s.h)
			}
		}
	}
	return sb.String()
}

func writeHistogram(sb *strings.Builder, name, labels string, h *Histogram) {
	if h == nil {
		return
	}
	bounds, counts, count, sum := h.buckets()
	cum := uint64(0)
	for i, b := range bounds {
		cum += counts[i]
		le := labelKey([]Label{{Key: "le", Value: formatValue(b)}})
		if labels != "" {
			le = labels + "," + le
		}
		sampleLine(sb, name+"_bucket", le, fmt.Sprintf("%d", cum))
	}
	le := labelKey([]Label{{Key: "le", Value: "+Inf"}})
	if labels != "" {
		le = labels + "," + le
	}
	sampleLine(sb, name+"_bucket", le, fmt.Sprintf("%d", count))
	sampleLine(sb, name+"_sum", labels, formatValue(sum))
	sampleLine(sb, name+"_count", labels, fmt.Sprintf("%d", count))
}
