package telemetry

import (
	"math"
	"sort"
	"testing"
)

// qRNG is a tiny splitmix64 stream so the property tests are seeded and
// deterministic.
type qRNG struct{ s uint64 }

func (g *qRNG) next() uint64 {
	g.s += 0x9e3779b97f4a7c15
	z := g.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (g *qRNG) float() float64 { return float64(g.next()>>11) / (1 << 53) }

// TestQuantileEdgeCases pins the degenerate inputs the latency harness
// can legitimately produce: no samples, one sample, and out-of-range p.
func TestQuantileEdgeCases(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.99)) {
		t.Error("empty sample: want NaN")
	}
	if !math.IsNaN(Quantile([]float64{}, 0)) {
		t.Error("empty non-nil sample: want NaN")
	}
	for _, p := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := Quantile([]float64{42}, p); got != 42 {
			t.Errorf("single sample, p=%v: got %v, want 42", p, got)
		}
	}
	xs := []float64{1, 2, 3}
	if got := Quantile(xs, -0.5); got != 1 {
		t.Errorf("p<0 must clamp to the minimum, got %v", got)
	}
	if got := Quantile(xs, 1.5); got != 3 {
		t.Errorf("p>1 must clamp to the maximum, got %v", got)
	}
}

// TestQuantileDuplicateHeavy: when a value dominates the sample (the
// shape of latency traces, where most packets take the fast path), the
// median and surrounding quantiles must sit exactly on that value, and
// every quantile must stay inside [min, max].
func TestQuantileDuplicateHeavy(t *testing.T) {
	xs := make([]float64, 0, 101)
	for i := 0; i < 97; i++ {
		xs = append(xs, 5)
	}
	xs = append(xs, 1, 5, 9, 100)
	sort.Float64s(xs)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		if got := Quantile(xs, p); got != 5 {
			t.Errorf("p=%v over the 97%%-duplicate sample: got %v, want exactly 5", p, got)
		}
	}
	if got := Quantile(xs, 1); got != 100 {
		t.Errorf("p=1: got %v, want the maximum 100", got)
	}

	all := []float64{3, 3, 3, 3}
	for _, p := range []float64{0, 0.33, 0.5, 0.99, 1} {
		if got := Quantile(all, p); got != 3 {
			t.Errorf("all-equal sample, p=%v: got %v, want 3", p, got)
		}
	}
}

// TestQuantileExactRanks checks the interpolation against hand-computed
// ranks, including the n-1 position arithmetic at both ends.
func TestQuantileExactRanks(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10},
		{0.25, 20},
		{0.5, 30},
		{0.75, 40},
		{1, 50},
		{0.125, 15},  // midway between rank 0 and 1
		{0.9, 46},    // pos = 3.6 → 40 + 0.6*10
		{0.99, 49.6}, // pos = 3.96
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v, %v) = %v, want %v", xs, c.p, got, c.want)
		}
	}
}

// TestQuantileProperties fuzzes seeded random samples against the
// invariants any quantile estimator must satisfy: bounded by [min, max],
// monotone in p, and exact on ranks that land on sample points.
func TestQuantileProperties(t *testing.T) {
	rng := &qRNG{s: 0x5eed}
	for trial := 0; trial < 200; trial++ {
		n := 2 + int(rng.next()%100)
		xs := make([]float64, n)
		for i := range xs {
			// Duplicate-heavy on odd trials: draw from 4 distinct values.
			if trial%2 == 1 {
				xs[i] = float64(rng.next() % 4)
			} else {
				xs[i] = rng.float() * 1000
			}
		}
		sort.Float64s(xs)

		prev := math.Inf(-1)
		for _, p := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			q := Quantile(xs, p)
			if q < xs[0] || q > xs[n-1] {
				t.Fatalf("trial %d: Quantile(p=%v) = %v outside [%v, %v]",
					trial, p, q, xs[0], xs[n-1])
			}
			if q < prev {
				t.Fatalf("trial %d: quantiles not monotone in p: %v after %v", trial, q, prev)
			}
			prev = q
		}
		// Ranks that land exactly on indices must return sample points.
		for k := 0; k < n; k++ {
			p := float64(k) / float64(n-1)
			if got := Quantile(xs, p); math.Abs(got-xs[k]) > 1e-9*math.Max(1, math.Abs(xs[k])) {
				t.Fatalf("trial %d: exact rank %d/%d: got %v, want %v", trial, k, n-1, got, xs[k])
			}
		}
	}
}
