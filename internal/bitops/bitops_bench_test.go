package bitops

import "testing"

// The Table 2 "bit manipulation" row at component level: hardware-
// lowered FFS/POPCNT (math/bits) against the software sequences an
// eBPF program must inline.

var sinkInt int

func BenchmarkFFSHardware(b *testing.B) {
	x := uint64(0x8000_0100_0000_0000)
	for i := 0; i < b.N; i++ {
		sinkInt = FFS(x + uint64(i&1))
	}
}

func BenchmarkFFSSoftware(b *testing.B) {
	x := uint64(0x8000_0100_0000_0000)
	for i := 0; i < b.N; i++ {
		sinkInt = SoftFFS(x + uint64(i&1))
	}
}

func BenchmarkPopcntHardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkInt = Popcnt(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkPopcntSoftware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkInt = SoftPopcnt(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkBitmapFirstSet(b *testing.B) {
	bm := NewBitmap(4096)
	bm.Set(4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = bm.FirstSet(0)
	}
}
