package bitops_test

import (
	"testing"

	"enetstl/internal/bitops"
)

// FuzzBitops cross-checks the hardware-lowered bit operations against
// the software reference implementations and each other's algebraic
// identities on arbitrary words.
func FuzzBitops(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(^uint64(0))
	f.Add(uint64(1) << 63)
	f.Add(uint64(0x8000000000000001))
	f.Add(uint64(0xdeadbeefcafebabe))
	f.Fuzz(func(t *testing.T, x uint64) {
		if got, want := bitops.FFS(x), bitops.SoftFFS(x); got != want {
			t.Fatalf("FFS(%#x) = %d, SoftFFS says %d", x, got, want)
		}
		if got, want := bitops.Popcnt(x), bitops.SoftPopcnt(x); got != want {
			t.Fatalf("Popcnt(%#x) = %d, SoftPopcnt says %d", x, got, want)
		}
		if x == 0 {
			if bitops.FFS(x) != 0 || bitops.FLS(x) != 0 || bitops.CTZ(x) != 64 || bitops.CLZ(x) != 64 {
				t.Fatalf("zero-word conventions violated: ffs=%d fls=%d ctz=%d clz=%d",
					bitops.FFS(x), bitops.FLS(x), bitops.CTZ(x), bitops.CLZ(x))
			}
			return
		}
		// 1-based endpoints against the zero-count forms.
		if bitops.FFS(x) != bitops.CTZ(x)+1 {
			t.Fatalf("FFS(%#x)=%d but CTZ+1=%d", x, bitops.FFS(x), bitops.CTZ(x)+1)
		}
		if bitops.FLS(x) != 64-bitops.CLZ(x) {
			t.Fatalf("FLS(%#x)=%d but 64-CLZ=%d", x, bitops.FLS(x), 64-bitops.CLZ(x))
		}
		// The lowest set bit isolated must sit exactly at FFS.
		if low := x & -x; bitops.FLS(low) != bitops.FFS(x) {
			t.Fatalf("isolated low bit of %#x at %d, FFS says %d", x, bitops.FLS(low), bitops.FFS(x))
		}
		// Complement partition of the 64 bit positions.
		if bitops.Popcnt(x)+bitops.Popcnt(^x) != 64 {
			t.Fatalf("Popcnt(%#x)+Popcnt(^x) = %d, want 64", x, bitops.Popcnt(x)+bitops.Popcnt(^x))
		}
		// Clearing the lowest set bit drops the population by one.
		if bitops.Popcnt(x&(x-1)) != bitops.Popcnt(x)-1 {
			t.Fatalf("clearing low bit of %#x did not drop Popcnt by 1", x)
		}
	})
}

// FuzzBitmapScan drives Bitmap.FirstSet / LastSet / CountRange over a
// two-word bitmap against a naive bit-by-bit scan — the occupancy-lookup
// primitive the queuing NFs build on (paper observation O1).
func FuzzBitmapScan(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint8(0))
	f.Add(uint64(1), uint64(1)<<63, uint8(64))
	f.Add(^uint64(0), uint64(0), uint8(127))
	f.Add(uint64(0x10), uint64(0x8000), uint8(5))
	f.Fuzz(func(t *testing.T, w0, w1 uint64, posRaw uint8) {
		b := bitops.Bitmap{w0, w1}
		nbits := 128
		pos := int(posRaw) % (nbits + 2) // probe past the end too

		naiveFirst := func(from int) int {
			if from < 0 {
				from = 0
			}
			for i := from; i < nbits; i++ {
				if b.Test(i) {
					return i
				}
			}
			return -1
		}
		naiveLast := func(upto int) int {
			if upto >= nbits {
				upto = nbits - 1
			}
			for i := upto; i >= 0; i-- {
				if b.Test(i) {
					return i
				}
			}
			return -1
		}
		naiveCount := func(n int) int {
			c := 0
			for i := 0; i < n && i < nbits; i++ {
				if b.Test(i) {
					c++
				}
			}
			return c
		}

		if pos < nbits {
			if got, want := b.FirstSet(pos), naiveFirst(pos); got != want {
				t.Fatalf("FirstSet(%d) over %#x,%#x = %d, naive says %d", pos, w0, w1, got, want)
			}
			if got, want := b.LastSet(pos), naiveLast(pos); got != want {
				t.Fatalf("LastSet(%d) over %#x,%#x = %d, naive says %d", pos, w0, w1, got, want)
			}
		}
		if got, want := b.CountRange(pos), naiveCount(pos); got != want {
			t.Fatalf("CountRange(%d) over %#x,%#x = %d, naive says %d", pos, w0, w1, got, want)
		}
	})
}
