// Package bitops provides the hardware bit-manipulation algorithms of
// eNetSTL (paper §4.3, "Algorithms: bit manipulation"). On amd64 the Go
// compiler lowers math/bits to single instructions (TZCNT/LZCNT/POPCNT),
// which is exactly the FFS/FLS/POPCNT acceleration the paper wraps;
// eBPF bytecode has no such instructions and must loop in software.
package bitops

import "math/bits"

// FFS returns the 1-based index of the least significant set bit of x,
// or 0 if x is zero — the semantics of the ffs(3) / kernel __ffs family
// the paper's queuing NFs rely on.
func FFS(x uint64) int {
	if x == 0 {
		return 0
	}
	return bits.TrailingZeros64(x) + 1
}

// FLS returns the 1-based index of the most significant set bit of x,
// or 0 if x is zero.
func FLS(x uint64) int {
	return 64 - bits.LeadingZeros64(x)
}

// CTZ returns the number of trailing zero bits (64 when x is 0).
func CTZ(x uint64) int { return bits.TrailingZeros64(x) }

// CLZ returns the number of leading zero bits (64 when x is 0).
func CLZ(x uint64) int { return bits.LeadingZeros64(x) }

// Popcnt returns the number of set bits in x.
func Popcnt(x uint64) int { return bits.OnesCount64(x) }

// Bitmap is a multi-word bitmap used to encode bucket occupancy
// (observation O1: "bit i is set iff buckets[i] contains elements").
type Bitmap []uint64

// NewBitmap returns a bitmap capable of holding nbits bits.
func NewBitmap(nbits int) Bitmap {
	return make(Bitmap, (nbits+63)/64)
}

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bitmap) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is set.
func (b Bitmap) Test(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// FirstSet returns the index of the first set bit at or after from, or
// -1 if none. It scans O(n/64) words, using one TZCNT per candidate word
// — the paper's O(ceil(n/64)) lookup.
func (b Bitmap) FirstSet(from int) int {
	if from < 0 {
		from = 0
	}
	n := len(b) * 64
	if from >= n {
		return -1
	}
	w := from >> 6
	// Mask off bits below `from` in the first word.
	cur := b[w] & (^uint64(0) << (uint(from) & 63))
	for {
		if cur != 0 {
			return w<<6 + bits.TrailingZeros64(cur)
		}
		w++
		if w >= len(b) {
			return -1
		}
		cur = b[w]
	}
}

// LastSet returns the index of the last set bit at or before upto, or -1.
func (b Bitmap) LastSet(upto int) int {
	n := len(b)*64 - 1
	if upto > n {
		upto = n
	}
	if upto < 0 {
		return -1
	}
	w := upto >> 6
	cur := b[w] & (^uint64(0) >> (63 - uint(upto)&63))
	for {
		if cur != 0 {
			return w<<6 + 63 - bits.LeadingZeros64(cur)
		}
		w--
		if w < 0 {
			return -1
		}
		cur = b[w]
	}
}

// CountRange returns the number of set bits in [0, n).
func (b Bitmap) CountRange(n int) int {
	if n <= 0 {
		return 0
	}
	total := 0
	full := n >> 6
	for i := 0; i < full; i++ {
		total += bits.OnesCount64(b[i])
	}
	if rem := uint(n) & 63; rem != 0 && full < len(b) {
		total += bits.OnesCount64(b[full] & (1<<rem - 1))
	}
	return total
}

// Words returns the number of 64-bit words in the bitmap.
func (b Bitmap) Words() int { return len(b) }

// SoftFFS is the software fallback an eBPF program must use: a
// shift-and-test loop. It exists so benchmarks can compare the two paths
// natively as well (Table 2's ffs row).
func SoftFFS(x uint64) int {
	if x == 0 {
		return 0
	}
	n := 1
	if x&0xffffffff == 0 {
		n += 32
		x >>= 32
	}
	if x&0xffff == 0 {
		n += 16
		x >>= 16
	}
	if x&0xff == 0 {
		n += 8
		x >>= 8
	}
	if x&0xf == 0 {
		n += 4
		x >>= 4
	}
	if x&0x3 == 0 {
		n += 2
		x >>= 2
	}
	if x&0x1 == 0 {
		n++
	}
	return n
}

// SoftPopcnt is the software population count (parallel reduction), for
// the same comparison purpose.
func SoftPopcnt(x uint64) int {
	x = x - (x>>1)&0x5555555555555555
	x = x&0x3333333333333333 + (x>>2)&0x3333333333333333
	x = (x + x>>4) & 0x0f0f0f0f0f0f0f0f
	return int(x * 0x0101010101010101 >> 56)
}
