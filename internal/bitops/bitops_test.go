package bitops

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestFFSKnownValues(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {0x8000000000000000, 64},
		{0b1010_1000, 4}, {^uint64(0), 1},
	}
	for _, c := range cases {
		if got := FFS(c.x); got != c.want {
			t.Errorf("FFS(%#x) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestFLSKnownValues(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {0x8000000000000000, 64}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := FLS(c.x); got != c.want {
			t.Errorf("FLS(%#x) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestSoftMatchesHard(t *testing.T) {
	if err := quick.Check(func(x uint64) bool {
		return SoftFFS(x) == FFS(x) && SoftPopcnt(x) == Popcnt(x)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPopcntAndCTZProperties(t *testing.T) {
	if err := quick.Check(func(x uint64) bool {
		if Popcnt(x) != bits.OnesCount64(x) {
			return false
		}
		if x != 0 && CTZ(x) != FFS(x)-1 {
			return false
		}
		return CLZ(x) == bits.LeadingZeros64(x)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapSetClearTest(t *testing.T) {
	b := NewBitmap(200)
	for _, i := range []int{0, 1, 63, 64, 127, 199} {
		if b.Test(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
}

func TestBitmapFirstSet(t *testing.T) {
	b := NewBitmap(256)
	if got := b.FirstSet(0); got != -1 {
		t.Fatalf("FirstSet on empty = %d, want -1", got)
	}
	b.Set(7)
	b.Set(130)
	if got := b.FirstSet(0); got != 7 {
		t.Fatalf("FirstSet(0) = %d, want 7", got)
	}
	if got := b.FirstSet(8); got != 130 {
		t.Fatalf("FirstSet(8) = %d, want 130", got)
	}
	if got := b.FirstSet(131); got != -1 {
		t.Fatalf("FirstSet(131) = %d, want -1", got)
	}
	if got := b.FirstSet(-5); got != 7 {
		t.Fatalf("FirstSet(-5) = %d, want 7", got)
	}
	if got := b.FirstSet(1000); got != -1 {
		t.Fatalf("FirstSet(1000) = %d, want -1", got)
	}
}

func TestBitmapLastSet(t *testing.T) {
	b := NewBitmap(256)
	if got := b.LastSet(255); got != -1 {
		t.Fatalf("LastSet on empty = %d, want -1", got)
	}
	b.Set(7)
	b.Set(130)
	if got := b.LastSet(255); got != 130 {
		t.Fatalf("LastSet(255) = %d, want 130", got)
	}
	if got := b.LastSet(129); got != 7 {
		t.Fatalf("LastSet(129) = %d, want 7", got)
	}
	if got := b.LastSet(6); got != -1 {
		t.Fatalf("LastSet(6) = %d, want -1", got)
	}
}

func TestBitmapFirstSetMatchesLinearScan(t *testing.T) {
	if err := quick.Check(func(words [4]uint64, from uint8) bool {
		b := Bitmap(words[:])
		start := int(from) % 260
		want := -1
		for i := start; i < 256; i++ {
			if b.Test(i) {
				want = i
				break
			}
		}
		return b.FirstSet(start) == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountRange(t *testing.T) {
	b := NewBitmap(128)
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(100)
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 2}, {65, 3}, {128, 4}, {101, 4},
	}
	for _, c := range cases {
		if got := b.CountRange(c.n); got != c.want {
			t.Errorf("CountRange(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
