// Package core assembles the eNetSTL library: it binds the component
// packages (bitops, nhash, simd, rpool, listbuckets, memwrapper) to a
// simulated eBPF VM by registering them as kfuncs with verifier
// metadata — the Go analogue of loading the eNetSTL kernel module.
//
// Native Go code (the paper's "Kernel" baselines, and control planes)
// uses the component packages directly; eBPF programs reach the same
// implementations through the kfunc IDs defined here.
package core

import (
	"enetstl/internal/ebpf/vm"
	"enetstl/internal/listbuckets"
	"enetstl/internal/memwrapper"
	"enetstl/internal/rpool"
)

// Kfunc IDs exposed by the library, grouped as in Table 2.
const (
	// Bit manipulation algorithms.
	KfFFS64     int32 = 2001
	KfFLS64     int32 = 2002
	KfPopcnt64  int32 = 2003
	KfBitmapFFS int32 = 2004

	// Hashing and unified post-hashing operations.
	KfHashCRC    int32 = 2101
	KfHashFast64 int32 = 2102
	KfHashN      int32 = 2103 // low-level: copies all hashes out (Fig. 6)
	KfHashCnt    int32 = 2104
	KfHashMin    int32 = 2105
	KfHashSet    int32 = 2106
	KfHashTest   int32 = 2107
	KfHashCmp    int32 = 2108

	// Parallel comparing and reducing.
	KfFindU32 int32 = 2201
	KfFindU16 int32 = 2202
	KfMinU32  int32 = 2203
	KfMaxU32  int32 = 2204
	// Low-level per-instruction SIMD wrappers (Fig. 6 ablation).
	KfVecCmpU32   int32 = 2251
	KfVecMoveMask int32 = 2252
	KfVecMulU32   int32 = 2253

	// Random pools.
	KfRpoolNext   int32 = 2301
	KfRpoolFill   int32 = 2302
	KfGeoNext     int32 = 2303
	KfRpoolRefill int32 = 2304

	// List-buckets.
	KfBktNew           int32 = 2401
	KfBktDestroy       int32 = 2402
	KfBktInsertFront   int32 = 2403
	KfBktPushBack      int32 = 2404
	KfBktPopFront      int32 = 2405
	KfBktFirstNonEmpty int32 = 2406
	KfBktLen           int32 = 2407

	// Memory wrapper.
	KfNodeAlloc      int32 = 2501
	KfNodeSetOwner   int32 = 2502
	KfNodeUnsetOwner int32 = 2503
	KfNodeConnect    int32 = 2504
	KfNodeDisconnect int32 = 2505
	KfNodeNext       int32 = 2506
	KfNodeRelease    int32 = 2507
	KfProxyRoot      int32 = 2508
)

// SigSeed is the signature-hash seed shared by kf_hash_cmp and its
// native users, so control planes and datapaths agree.
const SigSeed = 997

// Config tunes library registration for one VM.
type Config struct {
	// NodeDataSize is the payload size of memory-wrapper nodes exposed
	// to programs on this VM (the static BTF-like size bound the
	// verifier uses for node pointers). Defaults to 64.
	NodeDataSize int
	// MaxBktElem is the largest element the list-bucket kfuncs accept.
	// Defaults to 256.
	MaxBktElem int
	// AllocFault, when it returns true, makes the node_alloc kfunc fail
	// (NULL to programs) — the library's ALLOW_ERROR_INJECTION surface,
	// wired to the fault plane by the chaos harness.
	AllocFault func() bool
}

// Lib is the library instance attached to one VM.
type Lib struct {
	vm  *vm.VM
	cfg Config

	nodeByPtr map[uint64]*memwrapper.Node
	roots     map[uint64]*memwrapper.Node // proxy handle -> root node
}

// Attach registers every eNetSTL kfunc on machine and returns the
// library binding.
func Attach(machine *vm.VM, cfg Config) *Lib {
	if cfg.NodeDataSize == 0 {
		cfg.NodeDataSize = 64
	}
	if cfg.MaxBktElem == 0 {
		cfg.MaxBktElem = 256
	}
	l := &Lib{
		vm:        machine,
		cfg:       cfg,
		nodeByPtr: make(map[uint64]*memwrapper.Node),
		roots:     make(map[uint64]*memwrapper.Node),
	}
	l.registerBitops()
	l.registerHash()
	l.registerSIMD()
	l.registerRpool()
	l.registerBuckets()
	l.registerMemWrapper()
	return l
}

// VM returns the bound machine.
func (l *Lib) VM() *vm.VM { return l.vm }

// SetAllocFault installs (or clears, with nil) the node-allocation
// fault hook consulted by the node_alloc kfunc.
func (l *Lib) SetAllocFault(fn func() bool) { l.cfg.AllocFault = fn }

// --- Native-side object management (the control-plane path) ---

// NewPoolHandle installs a uniform random pool and returns its handle
// for storage in a BPF map.
func (l *Lib) NewPoolHandle(size int, seed uint64) (uint64, error) {
	p, err := rpool.NewPool(size, seed)
	if err != nil {
		return 0, err
	}
	return l.vm.AllocHandle(p), nil
}

// NewGeoPoolHandle installs a geometric pool.
func (l *Lib) NewGeoPoolHandle(size int, prob float64, seed uint64) (uint64, error) {
	g, err := rpool.NewGeoPool(size, prob, seed)
	if err != nil {
		return 0, err
	}
	return l.vm.AllocHandle(g), nil
}

// NewBucketsHandle installs a list-buckets instance.
func (l *Lib) NewBucketsHandle(nBuckets, elemSize, capacity int) (uint64, error) {
	lb, err := listbuckets.New(nBuckets, elemSize, capacity)
	if err != nil {
		return 0, err
	}
	return l.vm.AllocHandle(lb), nil
}

// MustHandle unwraps a handle-constructor result, panicking on error;
// for call sites with static, pre-validated sizes.
func MustHandle(h uint64, err error) uint64 {
	if err != nil {
		panic(err)
	}
	return h
}

// Buckets resolves a list-buckets handle (for control-plane draining).
func (l *Lib) Buckets(h uint64) (*listbuckets.ListBuckets, error) {
	o, err := l.vm.Object(h)
	if err != nil {
		return nil, err
	}
	return o.(*listbuckets.ListBuckets), nil
}

// NewProxyHandle installs a memory-wrapper proxy whose node payload size
// must match Config.NodeDataSize. Freed nodes retire their VM regions.
func (l *Lib) NewProxyHandle(p *memwrapper.Proxy) uint64 {
	prev := p.OnFree
	p.OnFree = func(n *memwrapper.Node) {
		if n.VMPtr != 0 {
			delete(l.nodeByPtr, n.VMPtr)
			_ = l.vm.FreeMem(n.VMPtr)
			n.VMPtr = 0
		}
		if prev != nil {
			prev(n)
		}
	}
	return l.vm.AllocHandle(p)
}

// SetRoot designates the node returned by the kf_proxy_root kfunc for
// the given proxy handle (the skip-list head, for example).
func (l *Lib) SetRoot(proxyHandle uint64, n *memwrapper.Node) {
	l.roots[proxyHandle] = n
}

// ExposeNode ensures n has a VM region pointer and returns it.
func (l *Lib) ExposeNode(n *memwrapper.Node) uint64 {
	if n.VMPtr == 0 {
		n.VMPtr = l.vm.AdoptMem(n.Data())
		l.nodeByPtr[n.VMPtr] = n
	}
	return n.VMPtr
}

func (l *Lib) proxy(h uint64) (*memwrapper.Proxy, error) {
	o, err := l.vm.Object(h)
	if err != nil {
		return nil, err
	}
	p, ok := o.(*memwrapper.Proxy)
	if !ok {
		return nil, vm.ErrBadHandle
	}
	return p, nil
}

func (l *Lib) node(ptr uint64) (*memwrapper.Node, error) {
	n, ok := l.nodeByPtr[ptr]
	if !ok {
		return nil, vm.ErrBadPointer
	}
	return n, nil
}
