package core

import (
	"enetstl/internal/ebpf/vm"
	"enetstl/internal/memwrapper"
)

// registerMemWrapper exposes the §4.2 memory wrapper to programs. Node
// pointers handed to programs are real VM memory regions of
// Config.NodeDataSize bytes (programs read and write payloads
// directly); the kfuncs map those pointers back to native nodes, which
// know their owning proxy, so only node_alloc and proxy_root take a
// proxy handle.
//
// Verifier metadata mirrors the paper: node_alloc / node_next /
// proxy_root are KF_ACQUIRE + KF_RET_NULL, node_release is KF_RELEASE,
// so programs that leak references or skip null checks are rejected at
// load time.
func (l *Lib) registerMemWrapper() {
	nodeSize := l.cfg.NodeDataSize
	nodeArg := vm.ArgSpec{Kind: vm.ArgPtrToMem, Size: nodeSize}

	// kf_node_alloc(proxyH, nOuts) -> node ptr. Error-injectable: the
	// NULL failure path is exactly what KF_RET_NULL already forces
	// programs to handle.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfNodeAlloc, Name: "enetstl_node_alloc",
		Meta: vm.KfuncMeta{NumArgs: 2, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgHandle}, {Kind: vm.ArgScalar},
		}, Ret: vm.RetMem, MemSize: nodeSize, Acquire: true, MayBeNull: true, ErrInject: true},
		Impl: func(machine *vm.VM, a1, a2, _, _, _ uint64) (uint64, error) {
			p, err := l.proxy(a1)
			if err != nil {
				return 0, err
			}
			if p.DataSize() != nodeSize {
				return 0, vm.ErrBadHandle
			}
			if l.cfg.AllocFault != nil && l.cfg.AllocFault() {
				return 0, nil // injected allocation failure -> NULL
			}
			n, err := p.Alloc(int(a2))
			if err != nil {
				return 0, nil // allocation failure -> NULL
			}
			return l.ExposeNode(n), nil
		}})

	ownerOp := func(id int32, name string, op func(*memwrapper.Proxy, *memwrapper.Node) error) {
		l.vm.RegisterKfunc(&vm.Kfunc{ID: id, Name: name,
			Meta: vm.KfuncMeta{NumArgs: 1, Args: [5]vm.ArgSpec{nodeArg}, Ret: vm.RetScalar},
			Impl: func(machine *vm.VM, a1, _, _, _, _ uint64) (uint64, error) {
				n, err := l.node(a1)
				if err != nil {
					return 0, err
				}
				if err := op(n.Proxy(), n); err != nil {
					return ^uint64(0), nil
				}
				return 0, nil
			}})
	}
	ownerOp(KfNodeSetOwner, "enetstl_node_set_owner", (*memwrapper.Proxy).SetOwner)
	ownerOp(KfNodeUnsetOwner, "enetstl_node_unset_owner", (*memwrapper.Proxy).UnsetOwner)

	// kf_node_connect(predPtr, slot, succPtr).
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfNodeConnect, Name: "enetstl_node_connect",
		Meta: vm.KfuncMeta{NumArgs: 3, Args: [5]vm.ArgSpec{
			nodeArg, {Kind: vm.ArgScalar}, nodeArg,
		}, Ret: vm.RetScalar},
		Impl: func(machine *vm.VM, a1, a2, a3, _, _ uint64) (uint64, error) {
			pred, err := l.node(a1)
			if err != nil {
				return 0, err
			}
			succ, err := l.node(a3)
			if err != nil {
				return 0, err
			}
			if err := pred.Proxy().Connect(pred, int(a2), succ); err != nil {
				return ^uint64(0), nil
			}
			return 0, nil
		}})

	// kf_node_disconnect(predPtr, slot).
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfNodeDisconnect, Name: "enetstl_node_disconnect",
		Meta: vm.KfuncMeta{NumArgs: 2, Args: [5]vm.ArgSpec{
			nodeArg, {Kind: vm.ArgScalar},
		}, Ret: vm.RetScalar},
		Impl: func(machine *vm.VM, a1, a2, _, _, _ uint64) (uint64, error) {
			pred, err := l.node(a1)
			if err != nil {
				return 0, err
			}
			if err := pred.Proxy().Disconnect(pred, int(a2)); err != nil {
				return ^uint64(0), nil
			}
			return 0, nil
		}})

	// kf_node_next(predPtr, slot) -> node ptr (ref taken).
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfNodeNext, Name: "enetstl_node_next",
		Meta: vm.KfuncMeta{NumArgs: 2, Args: [5]vm.ArgSpec{
			nodeArg, {Kind: vm.ArgScalar},
		}, Ret: vm.RetMem, MemSize: nodeSize, Acquire: true, MayBeNull: true},
		Impl: func(machine *vm.VM, a1, a2, _, _, _ uint64) (uint64, error) {
			pred, err := l.node(a1)
			if err != nil {
				return 0, err
			}
			succ, err := pred.Proxy().Next(pred, int(a2))
			if err != nil {
				return 0, err
			}
			if succ == nil {
				return 0, nil
			}
			return l.ExposeNode(succ), nil
		}})

	// kf_node_release(nodePtr).
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfNodeRelease, Name: "enetstl_node_release",
		Meta: vm.KfuncMeta{NumArgs: 1, Args: [5]vm.ArgSpec{nodeArg},
			Ret: vm.RetVoid, ReleaseArg: 1},
		Impl: func(machine *vm.VM, a1, _, _, _, _ uint64) (uint64, error) {
			n, err := l.node(a1)
			if err != nil {
				return 0, err
			}
			if err := n.Proxy().Release(n); err != nil {
				return 0, err
			}
			return 0, nil
		}})

	// kf_proxy_root(proxyH) -> designated root node ptr (ref taken).
	// Error-injectable: a NULL root is the already-handled "structure
	// not initialized yet" path.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfProxyRoot, Name: "enetstl_proxy_root",
		Meta: vm.KfuncMeta{NumArgs: 1, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgHandle},
		}, Ret: vm.RetMem, MemSize: nodeSize, Acquire: true, MayBeNull: true, ErrInject: true},
		Impl: func(machine *vm.VM, a1, _, _, _, _ uint64) (uint64, error) {
			p, err := l.proxy(a1)
			if err != nil {
				return 0, err
			}
			root := l.roots[a1]
			if root == nil || root.Freed() {
				return 0, nil
			}
			if err := p.Acquire(root); err != nil {
				return 0, nil
			}
			return l.ExposeNode(root), nil
		}})
}
