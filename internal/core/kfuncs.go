package core

import (
	"fmt"

	"enetstl/internal/bitops"
	"enetstl/internal/ebpf/vm"
	"enetstl/internal/listbuckets"
	"enetstl/internal/nhash"
	"enetstl/internal/rpool"
	"enetstl/internal/simd"
)

// u32Slice views a byte region as little-endian uint32 lanes without
// copying. The simulated VM stores memory as bytes; components operate
// on uint32 views, so conversion happens at the kfunc boundary (the
// analogue of SIMD register loads, paid once per call).
func u32Slice(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		j := i * 4
		out[i] = uint32(b[j]) | uint32(b[j+1])<<8 | uint32(b[j+2])<<16 | uint32(b[j+3])<<24
	}
	return out
}

func putU32Slice(b []byte, v []uint32) {
	for i, x := range v {
		j := i * 4
		b[j], b[j+1], b[j+2], b[j+3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
	}
}

func u64At(b []byte, i int) uint64 {
	j := i * 8
	return uint64(b[j]) | uint64(b[j+1])<<8 | uint64(b[j+2])<<16 | uint64(b[j+3])<<24 |
		uint64(b[j+4])<<32 | uint64(b[j+5])<<40 | uint64(b[j+6])<<48 | uint64(b[j+7])<<56
}

func putU64At(b []byte, i int, v uint64) {
	j := i * 8
	b[j], b[j+1], b[j+2], b[j+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[j+4], b[j+5], b[j+6], b[j+7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}

func incU32(b []byte, i int) {
	j := i * 4
	v := uint32(b[j]) | uint32(b[j+1])<<8 | uint32(b[j+2])<<16 | uint32(b[j+3])<<24
	v++
	b[j], b[j+1], b[j+2], b[j+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte, i int) uint32 {
	j := i * 4
	return uint32(b[j]) | uint32(b[j+1])<<8 | uint32(b[j+2])<<16 | uint32(b[j+3])<<24
}

func (l *Lib) registerBitops() {
	scalar1 := vm.KfuncMeta{NumArgs: 1, Args: [5]vm.ArgSpec{{Kind: vm.ArgScalar}}, Ret: vm.RetScalar}
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfFFS64, Name: "enetstl_ffs64", Meta: scalar1,
		Impl: func(_ *vm.VM, a1, _, _, _, _ uint64) (uint64, error) {
			return uint64(bitops.FFS(a1)), nil
		}})
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfFLS64, Name: "enetstl_fls64", Meta: scalar1,
		Impl: func(_ *vm.VM, a1, _, _, _, _ uint64) (uint64, error) {
			return uint64(bitops.FLS(a1)), nil
		}})
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfPopcnt64, Name: "enetstl_popcnt64", Meta: scalar1,
		Impl: func(_ *vm.VM, a1, _, _, _, _ uint64) (uint64, error) {
			return uint64(bitops.Popcnt(a1)), nil
		}})
	// kf_bitmap_ffs(bitmapPtr, bitmapBytes, fromBit) -> 1+bit or 0.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfBitmapFFS, Name: "enetstl_bitmap_ffs",
		Meta: vm.KfuncMeta{NumArgs: 3, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgPtrToMem, SizeArg: 2}, {Kind: vm.ArgScalar}, {Kind: vm.ArgScalar},
		}, Ret: vm.RetScalar},
		Impl: func(machine *vm.VM, a1, a2, a3, _, _ uint64) (uint64, error) {
			b, err := machine.Bytes(a1, int(a2))
			if err != nil {
				return 0, err
			}
			if a2%8 != 0 {
				return 0, fmt.Errorf("bitmap size %d not a multiple of 8", a2)
			}
			bm := make(bitops.Bitmap, a2/8)
			for i := range bm {
				bm[i] = u64At(b, i)
			}
			idx := bm.FirstSet(int(a3))
			return uint64(idx + 1), nil
		}})
}

func (l *Lib) registerHash() {
	// kf_hash_crc(keyPtr, keyLen, seed) -> u32.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfHashCRC, Name: "enetstl_hash_crc",
		Meta: vm.KfuncMeta{NumArgs: 3, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgPtrToMem, SizeArg: 2}, {Kind: vm.ArgScalar}, {Kind: vm.ArgScalar},
		}, Ret: vm.RetScalar},
		Impl: func(machine *vm.VM, a1, a2, a3, _, _ uint64) (uint64, error) {
			key, err := machine.Bytes(a1, int(a2))
			if err != nil {
				return 0, err
			}
			return uint64(nhash.CRC32(key, uint32(a3))), nil
		}})
	// kf_hash_fast64(keyPtr, keyLen, seed) -> u64.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfHashFast64, Name: "enetstl_hash_fast64",
		Meta: vm.KfuncMeta{NumArgs: 3, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgPtrToMem, SizeArg: 2}, {Kind: vm.ArgScalar}, {Kind: vm.ArgScalar},
		}, Ret: vm.RetScalar},
		Impl: func(machine *vm.VM, a1, a2, a3, _, _ uint64) (uint64, error) {
			key, err := machine.Bytes(a1, int(a2))
			if err != nil {
				return 0, err
			}
			return nhash.FastHash64(key, a3), nil
		}})
	// kf_hash_n(keyPtr, keyLen, outPtr, outBytes): the low-level
	// interface — all hash values are copied back to program memory.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfHashN, Name: "enetstl_hash_n",
		Meta: vm.KfuncMeta{NumArgs: 4, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgPtrToMem, SizeArg: 2}, {Kind: vm.ArgScalar},
			{Kind: vm.ArgPtrToMem, SizeArg: 4}, {Kind: vm.ArgScalar},
		}, Ret: vm.RetVoid},
		Impl: func(machine *vm.VM, a1, a2, a3, a4, _ uint64) (uint64, error) {
			key, err := machine.Bytes(a1, int(a2))
			if err != nil {
				return 0, err
			}
			out, err := machine.Bytes(a3, int(a4))
			if err != nil {
				return 0, err
			}
			d := int(a4) / 4
			hs := make([]uint32, d)
			nhash.HashN(key, d, hs)
			putU32Slice(out, hs)
			return 0, nil
		}})

	// flags for the fused matrix ops: rows<<32 | mask.
	matrixOp := func(id int32, name string,
		op func(buf []byte, rows int, mask uint32, key []byte) uint64) {
		l.vm.RegisterKfunc(&vm.Kfunc{ID: id, Name: name,
			Meta: vm.KfuncMeta{NumArgs: 5, Args: [5]vm.ArgSpec{
				{Kind: vm.ArgPtrToMem, SizeArg: 2}, {Kind: vm.ArgScalar},
				{Kind: vm.ArgPtrToMem, SizeArg: 4}, {Kind: vm.ArgScalar},
				{Kind: vm.ArgScalar},
			}, Ret: vm.RetScalar},
			Impl: func(machine *vm.VM, a1, a2, a3, a4, a5 uint64) (uint64, error) {
				buf, err := machine.Bytes(a1, int(a2))
				if err != nil {
					return 0, err
				}
				key, err := machine.Bytes(a3, int(a4))
				if err != nil {
					return 0, err
				}
				rows := int(a5 >> 32)
				mask := uint32(a5)
				if rows <= 0 || mask == ^uint32(0) {
					return 0, fmt.Errorf("%s: bad flags %#x", name, a5)
				}
				if rows*(int(mask)+1)*4 > len(buf) {
					return 0, fmt.Errorf("%s: matrix %dx%d exceeds buffer %d", name, rows, mask+1, len(buf))
				}
				return op(buf, rows, mask, key), nil
			}})
	}
	// kf_hash_cnt: fused multi-hash + counter increment (Listing 2).
	matrixOp(KfHashCnt, "enetstl_hash_cnt", func(buf []byte, rows int, mask uint32, key []byte) uint64 {
		w := int(mask) + 1
		for i := 0; i < rows; i++ {
			h := nhash.FastHash32(key, nhash.Seed(i))
			incU32(buf, i*w+int(h&mask))
		}
		return 0
	})
	// kf_hash_min: fused multi-hash + min-reduction (count-min query).
	matrixOp(KfHashMin, "enetstl_hash_min", func(buf []byte, rows int, mask uint32, key []byte) uint64 {
		w := int(mask) + 1
		min := ^uint32(0)
		for i := 0; i < rows; i++ {
			h := nhash.FastHash32(key, nhash.Seed(i))
			if c := getU32(buf, i*w+int(h&mask)); c < min {
				min = c
			}
		}
		return uint64(min)
	})

	// kf_hash_cmp: the fused "comparing after hashing" of §4.3 ([27],
	// d-ary cuckoo hashing): compute d candidate slots for key and
	// return the first whose stored signature matches, or all-ones.
	// Slot layout: (sig u32, value u32) pairs; flags = d<<32 | slotMask.
	matrixCmp := func(buf []byte, d int, mask uint32, key []byte) uint64 {
		sig := nhash.FastHash32(key, SigSeed) | 1
		for i := 0; i < d; i++ {
			h := nhash.FastHash32(key, nhash.Seed(i)) & mask
			if getU32(buf, int(h)*2) == sig {
				return uint64(h)
			}
		}
		return ^uint64(0)
	}
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfHashCmp, Name: "enetstl_hash_cmp",
		Meta: vm.KfuncMeta{NumArgs: 5, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgPtrToMem, SizeArg: 2}, {Kind: vm.ArgScalar},
			{Kind: vm.ArgPtrToMem, SizeArg: 4}, {Kind: vm.ArgScalar},
			{Kind: vm.ArgScalar},
		}, Ret: vm.RetScalar},
		Impl: func(machine *vm.VM, a1, a2, a3, a4, a5 uint64) (uint64, error) {
			buf, err := machine.Bytes(a1, int(a2))
			if err != nil {
				return 0, err
			}
			key, err := machine.Bytes(a3, int(a4))
			if err != nil {
				return 0, err
			}
			d := int(a5 >> 32)
			mask := uint32(a5)
			if d <= 0 || (int(mask)+1)*8 > len(buf) {
				return 0, fmt.Errorf("hash_cmp: bad flags %#x for %d-byte table", a5, len(buf))
			}
			return matrixCmp(buf, d, mask, key), nil
		}})

	// Bloom-style fused ops: flags = d<<32 | bitMask (bits-1, pow2-1).
	bloomOp := func(id int32, name string,
		op func(bm []byte, d int, mask uint32, key []byte) uint64) {
		l.vm.RegisterKfunc(&vm.Kfunc{ID: id, Name: name,
			Meta: vm.KfuncMeta{NumArgs: 5, Args: [5]vm.ArgSpec{
				{Kind: vm.ArgPtrToMem, SizeArg: 2}, {Kind: vm.ArgScalar},
				{Kind: vm.ArgPtrToMem, SizeArg: 4}, {Kind: vm.ArgScalar},
				{Kind: vm.ArgScalar},
			}, Ret: vm.RetScalar},
			Impl: func(machine *vm.VM, a1, a2, a3, a4, a5 uint64) (uint64, error) {
				bm, err := machine.Bytes(a1, int(a2))
				if err != nil {
					return 0, err
				}
				key, err := machine.Bytes(a3, int(a4))
				if err != nil {
					return 0, err
				}
				d := int(a5 >> 32)
				mask := uint32(a5)
				if d <= 0 || (uint64(mask)+1)/8 > uint64(len(bm)) {
					return 0, fmt.Errorf("%s: bad flags %#x for %d-byte bitmap", name, a5, len(bm))
				}
				return op(bm, d, mask, key), nil
			}})
	}
	// kf_hash_set: fused "setting bits after hashing" (Bloom insert).
	bloomOp(KfHashSet, "enetstl_hash_set", func(bm []byte, d int, mask uint32, key []byte) uint64 {
		for i := 0; i < d; i++ {
			h := nhash.FastHash32(key, nhash.Seed(i)) & mask
			bm[h>>3] |= 1 << (h & 7)
		}
		return 0
	})
	// kf_hash_test: fused Bloom membership test.
	bloomOp(KfHashTest, "enetstl_hash_test", func(bm []byte, d int, mask uint32, key []byte) uint64 {
		for i := 0; i < d; i++ {
			h := nhash.FastHash32(key, nhash.Seed(i)) & mask
			if bm[h>>3]&(1<<(h&7)) == 0 {
				return 0
			}
		}
		return 1
	})
}

func (l *Lib) registerSIMD() {
	memKey := vm.KfuncMeta{NumArgs: 3, Args: [5]vm.ArgSpec{
		{Kind: vm.ArgPtrToMem, SizeArg: 2}, {Kind: vm.ArgScalar}, {Kind: vm.ArgScalar},
	}, Ret: vm.RetScalar}
	// kf_find_u32(arrPtr, arrBytes, key) -> index or all-ones.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfFindU32, Name: "enetstl_find_u32", Meta: memKey,
		Impl: func(machine *vm.VM, a1, a2, a3, _, _ uint64) (uint64, error) {
			b, err := machine.Bytes(a1, int(a2))
			if err != nil {
				return 0, err
			}
			idx := simd.FindU32(u32Slice(b), uint32(a3))
			return uint64(int64(idx)), nil
		}})
	// kf_find_u16(arrPtr, arrBytes, key) -> index or all-ones.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfFindU16, Name: "enetstl_find_u16", Meta: memKey,
		Impl: func(machine *vm.VM, a1, a2, a3, _, _ uint64) (uint64, error) {
			b, err := machine.Bytes(a1, int(a2))
			if err != nil {
				return 0, err
			}
			arr := make([]uint16, len(b)/2)
			for i := range arr {
				arr[i] = uint16(b[i*2]) | uint16(b[i*2+1])<<8
			}
			idx := simd.FindU16(arr, uint16(a3))
			return uint64(int64(idx)), nil
		}})
	memOnly := vm.KfuncMeta{NumArgs: 2, Args: [5]vm.ArgSpec{
		{Kind: vm.ArgPtrToMem, SizeArg: 2}, {Kind: vm.ArgScalar},
	}, Ret: vm.RetScalar}
	// kf_min_u32 / kf_max_u32 -> idx<<32 | value.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfMinU32, Name: "enetstl_min_u32", Meta: memOnly,
		Impl: func(machine *vm.VM, a1, a2, _, _, _ uint64) (uint64, error) {
			b, err := machine.Bytes(a1, int(a2))
			if err != nil {
				return 0, err
			}
			idx, val := simd.MinU32(u32Slice(b))
			return uint64(uint32(idx))<<32 | uint64(val), nil
		}})
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfMaxU32, Name: "enetstl_max_u32", Meta: memOnly,
		Impl: func(machine *vm.VM, a1, a2, _, _, _ uint64) (uint64, error) {
			b, err := machine.Bytes(a1, int(a2))
			if err != nil {
				return 0, err
			}
			idx, val := simd.MaxU32(u32Slice(b))
			return uint64(uint32(idx))<<32 | uint64(val), nil
		}})

	// Low-level wrappers (Fig. 6): fixed 32-byte vectors through memory.
	const vecBytes = simd.LaneWidth * 4
	// kf_vec_cmp_u32(destPtr, srcPtr, key): dest = lanewise (src==key).
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfVecCmpU32, Name: "enetstl_vec_cmp_u32",
		Meta: vm.KfuncMeta{NumArgs: 3, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgPtrToMem, Size: vecBytes},
			{Kind: vm.ArgPtrToMem, Size: vecBytes},
			{Kind: vm.ArgScalar},
		}, Ret: vm.RetVoid},
		Impl: func(machine *vm.VM, a1, a2, a3, _, _ uint64) (uint64, error) {
			dst, err := machine.Bytes(a1, vecBytes)
			if err != nil {
				return 0, err
			}
			src, err := machine.Bytes(a2, vecBytes)
			if err != nil {
				return 0, err
			}
			v := simd.VecLoad(u32Slice(src))  // costly load
			m := simd.VecCmpEq(v, uint32(a3)) // the instruction
			putU32Slice(dst, m[:])            // costly store
			return 0, nil
		}})
	// kf_vec_movemask(srcPtr) -> lane mask bits.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfVecMoveMask, Name: "enetstl_vec_movemask",
		Meta: vm.KfuncMeta{NumArgs: 1, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgPtrToMem, Size: vecBytes},
		}, Ret: vm.RetScalar},
		Impl: func(machine *vm.VM, a1, _, _, _, _ uint64) (uint64, error) {
			src, err := machine.Bytes(a1, vecBytes)
			if err != nil {
				return 0, err
			}
			v := simd.VecLoad(u32Slice(src))
			return uint64(simd.VecMoveMask(v)), nil
		}})
	// kf_vec_mul_u32(destPtr, lhsPtr, rhsPtr) — Listing 1's
	// bpf_mm256_mul_epu32 with its load/store round trips.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfVecMulU32, Name: "enetstl_vec_mul_u32",
		Meta: vm.KfuncMeta{NumArgs: 3, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgPtrToMem, Size: vecBytes},
			{Kind: vm.ArgPtrToMem, Size: vecBytes},
			{Kind: vm.ArgPtrToMem, Size: vecBytes},
		}, Ret: vm.RetVoid},
		Impl: func(machine *vm.VM, a1, a2, a3, _, _ uint64) (uint64, error) {
			dst, err := machine.Bytes(a1, vecBytes)
			if err != nil {
				return 0, err
			}
			lhs, err := machine.Bytes(a2, vecBytes)
			if err != nil {
				return 0, err
			}
			rhs, err := machine.Bytes(a3, vecBytes)
			if err != nil {
				return 0, err
			}
			r := simd.VecMul(simd.VecLoad(u32Slice(lhs)), simd.VecLoad(u32Slice(rhs)))
			putU32Slice(dst, r[:])
			return 0, nil
		}})
}

func (l *Lib) registerRpool() {
	handleOnly := vm.KfuncMeta{NumArgs: 1, Args: [5]vm.ArgSpec{{Kind: vm.ArgHandle}}, Ret: vm.RetScalar}
	// kf_rpool_next(handle) -> u32.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfRpoolNext, Name: "enetstl_rpool_next", Meta: handleOnly,
		Impl: func(machine *vm.VM, a1, _, _, _, _ uint64) (uint64, error) {
			o, err := machine.Object(a1)
			if err != nil {
				return 0, err
			}
			p, ok := o.(*rpool.Pool)
			if !ok {
				return 0, vm.ErrBadHandle
			}
			return uint64(p.Next()), nil
		}})
	// kf_rpool_fill(handle, outPtr, outBytes): one call per packet
	// instead of one helper call per row.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfRpoolFill, Name: "enetstl_rpool_fill",
		Meta: vm.KfuncMeta{NumArgs: 3, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgHandle}, {Kind: vm.ArgPtrToMem, SizeArg: 3}, {Kind: vm.ArgScalar},
		}, Ret: vm.RetVoid},
		Impl: func(machine *vm.VM, a1, a2, a3, _, _ uint64) (uint64, error) {
			o, err := machine.Object(a1)
			if err != nil {
				return 0, err
			}
			p, ok := o.(*rpool.Pool)
			if !ok {
				return 0, vm.ErrBadHandle
			}
			out, err := machine.Bytes(a2, int(a3))
			if err != nil {
				return 0, err
			}
			n := int(a3) / 4
			for i := 0; i < n; i++ {
				v := p.Next()
				j := i * 4
				out[j], out[j+1], out[j+2], out[j+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			}
			return 0, nil
		}})
	// kf_rpool_refill(bufPtr, bytes): refill a program-resident random
	// pool in place (the "automatic reinjection" of §4.3). Programs read
	// the pooled numbers directly from map memory and call this only
	// when the pool drains, amortizing the call to ~zero per packet.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfRpoolRefill, Name: "enetstl_rpool_refill",
		Meta: vm.KfuncMeta{NumArgs: 2, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgPtrToMem, SizeArg: 2}, {Kind: vm.ArgScalar},
		}, Ret: vm.RetVoid,
			// Error-injectable: a skipped refill leaves the program
			// serving its previous batch — stale randomness, never UB.
			ErrInject: true},
		Impl: func(machine *vm.VM, a1, a2, _, _, _ uint64) (uint64, error) {
			buf, err := machine.Bytes(a1, int(a2))
			if err != nil {
				return 0, err
			}
			for j := 0; j+4 <= len(buf); j += 4 {
				v := machine.Rand32()
				buf[j], buf[j+1], buf[j+2], buf[j+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			}
			return 0, nil
		}})

	// kf_geo_next(handle) -> geometric skip count.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfGeoNext, Name: "enetstl_geo_next", Meta: handleOnly,
		Impl: func(machine *vm.VM, a1, _, _, _, _ uint64) (uint64, error) {
			o, err := machine.Object(a1)
			if err != nil {
				return 0, err
			}
			g, ok := o.(*rpool.GeoPool)
			if !ok {
				return 0, vm.ErrBadHandle
			}
			return uint64(g.Next()), nil
		}})
}

func (l *Lib) buckets(machine *vm.VM, h uint64) (*listbuckets.ListBuckets, error) {
	o, err := machine.Object(h)
	if err != nil {
		return nil, err
	}
	lb, ok := o.(*listbuckets.ListBuckets)
	if !ok {
		return nil, vm.ErrBadHandle
	}
	return lb, nil
}

func (l *Lib) registerBuckets() {
	// kf_bktlist_new(nBuckets, elemSize) -> handle.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfBktNew, Name: "enetstl_bktlist_new",
		Meta: vm.KfuncMeta{NumArgs: 2, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgScalar}, {Kind: vm.ArgScalar},
		}, Ret: vm.RetHandle, Acquire: true, MayBeNull: true, ErrInject: true},
		Impl: func(machine *vm.VM, a1, a2, _, _, _ uint64) (uint64, error) {
			if a1 == 0 || a1 > 1<<20 || a2 == 0 || a2 > uint64(l.cfg.MaxBktElem) {
				return 0, nil // allocation failure -> NULL
			}
			lb, err := listbuckets.New(int(a1), int(a2), 64)
			if err != nil {
				return 0, nil // allocation failure -> NULL
			}
			return machine.AllocHandle(lb), nil
		}})
	// kf_bktlist_destroy(handle).
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfBktDestroy, Name: "enetstl_bktlist_destroy",
		Meta: vm.KfuncMeta{NumArgs: 1, Args: [5]vm.ArgSpec{{Kind: vm.ArgHandle}},
			Ret: vm.RetVoid, ReleaseArg: 1},
		Impl: func(machine *vm.VM, a1, _, _, _, _ uint64) (uint64, error) {
			return 0, machine.FreeHandle(a1)
		}})

	insert := func(id int32, name string, front bool) {
		l.vm.RegisterKfunc(&vm.Kfunc{ID: id, Name: name,
			Meta: vm.KfuncMeta{NumArgs: 4, Args: [5]vm.ArgSpec{
				{Kind: vm.ArgHandle}, {Kind: vm.ArgScalar},
				{Kind: vm.ArgPtrToMem, SizeArg: 4}, {Kind: vm.ArgScalar},
			}, Ret: vm.RetScalar,
				// Error-injectable: a failed insert returns the same -1
				// the bad-argument path already produces; the element is
				// shed, the structure stays consistent.
				ErrInject: true},
			Impl: func(machine *vm.VM, a1, a2, a3, a4, _ uint64) (uint64, error) {
				lb, err := l.buckets(machine, a1)
				if err != nil {
					return 0, err
				}
				if int(a2) >= lb.NumBuckets() || int(a4) != lb.ElemSize() {
					return ^uint64(0), nil
				}
				data, err := machine.Bytes(a3, int(a4))
				if err != nil {
					return 0, err
				}
				if front {
					lb.InsertFront(int(a2), data)
				} else {
					lb.PushBack(int(a2), data)
				}
				return 0, nil
			}})
	}
	insert(KfBktInsertFront, "enetstl_bktlist_insert_front", true)
	insert(KfBktPushBack, "enetstl_bktlist_push_back", false)

	// kf_bktlist_pop_front(handle, idx, outPtr, outLen) -> 1 or 0.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfBktPopFront, Name: "enetstl_bktlist_pop_front",
		Meta: vm.KfuncMeta{NumArgs: 4, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgHandle}, {Kind: vm.ArgScalar},
			{Kind: vm.ArgPtrToMem, SizeArg: 4}, {Kind: vm.ArgScalar},
		}, Ret: vm.RetScalar},
		Impl: func(machine *vm.VM, a1, a2, a3, a4, _ uint64) (uint64, error) {
			lb, err := l.buckets(machine, a1)
			if err != nil {
				return 0, err
			}
			if int(a2) >= lb.NumBuckets() || int(a4) < lb.ElemSize() {
				return 0, nil
			}
			out, err := machine.Bytes(a3, int(a4))
			if err != nil {
				return 0, err
			}
			if lb.PopFront(int(a2), out) {
				return 1, nil
			}
			return 0, nil
		}})
	// kf_bktlist_first_nonempty(handle, from) -> 1+idx or 0.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfBktFirstNonEmpty, Name: "enetstl_bktlist_first_nonempty",
		Meta: vm.KfuncMeta{NumArgs: 2, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgHandle}, {Kind: vm.ArgScalar},
		}, Ret: vm.RetScalar},
		Impl: func(machine *vm.VM, a1, a2, _, _, _ uint64) (uint64, error) {
			lb, err := l.buckets(machine, a1)
			if err != nil {
				return 0, err
			}
			return uint64(lb.FirstNonEmpty(int(a2)) + 1), nil
		}})
	// kf_bktlist_len(handle, idx) -> element count.
	l.vm.RegisterKfunc(&vm.Kfunc{ID: KfBktLen, Name: "enetstl_bktlist_len",
		Meta: vm.KfuncMeta{NumArgs: 2, Args: [5]vm.ArgSpec{
			{Kind: vm.ArgHandle}, {Kind: vm.ArgScalar},
		}, Ret: vm.RetScalar},
		Impl: func(machine *vm.VM, a1, a2, _, _, _ uint64) (uint64, error) {
			lb, err := l.buckets(machine, a1)
			if err != nil {
				return 0, err
			}
			if int(a2) >= lb.NumBuckets() {
				return 0, nil
			}
			return uint64(lb.Len(int(a2))), nil
		}})
}
