package core_test

import (
	"testing"

	"enetstl/internal/core"
	"enetstl/internal/ebpf/asm"
	"enetstl/internal/ebpf/maps"
	"enetstl/internal/ebpf/verifier"
	"enetstl/internal/ebpf/vm"
	"enetstl/internal/memwrapper"
	"enetstl/internal/nhash"
)

// runKfuncProg verifies and runs a small program, returning R0.
func runKfuncProg(t *testing.T, machine *vm.VM, b *asm.Builder, ctx []byte, opts verifier.Options) uint64 {
	t.Helper()
	prog, err := verifier.LoadAndVerify(machine, t.Name(), b.MustProgram(), opts)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	got, err := machine.Run(prog, ctx)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return got
}

func TestBitKfuncs(t *testing.T) {
	machine := vm.New()
	core.Attach(machine, core.Config{})
	b := asm.New()
	b.LoadImm64(asm.R1, 0x8000000000000100)
	b.Kfunc(core.KfFFS64) // -> 9
	b.Mov(asm.R6, asm.R0)
	b.LoadImm64(asm.R1, 0x8000000000000100)
	b.Kfunc(core.KfPopcnt64) // -> 2
	b.Mul(asm.R0, asm.R6)    // 18
	b.Exit()
	if got := runKfuncProg(t, machine, b, nil, verifier.Options{}); got != 18 {
		t.Fatalf("got %d, want 18", got)
	}
}

func TestHashKfuncMatchesNative(t *testing.T) {
	machine := vm.New()
	core.Attach(machine, core.Config{})
	b := asm.New()
	b.Mov(asm.R6, asm.R1)
	b.Mov(asm.R1, asm.R6)
	b.MovImm(asm.R2, 16)
	b.MovImm(asm.R3, 42)
	b.Kfunc(core.KfHashFast64)
	b.Exit()
	pkt := make([]byte, 64)
	copy(pkt, "hash-me-16-bytes")
	got := runKfuncProg(t, machine, b, pkt, verifier.Options{CtxSize: 64})
	want := nhash.FastHash64(pkt[:16], 42)
	if got != want {
		t.Fatalf("kfunc hash %#x, native %#x", got, want)
	}
}

func TestFindKfunc(t *testing.T) {
	machine := vm.New()
	core.Attach(machine, core.Config{})
	arr := maps.Must(maps.NewArray(32, 1)) // 8 u32 lanes
	fd := machine.RegisterMap(arr)
	// lane 5 = 0xDEAD
	d := arr.Data()
	d[20], d[21] = 0xAD, 0xDE

	b := asm.New()
	b.StoreImm(asm.R10, -4, 0, 4)
	b.LoadMap(asm.R1, fd)
	b.Mov(asm.R2, asm.R10).AddImm(asm.R2, -4)
	b.Call(vm.HelperMapLookup)
	b.JmpImm(asm.JNE, asm.R0, 0, "ok")
	b.MovImm(asm.R0, 99).Exit()
	b.Label("ok")
	b.Mov(asm.R1, asm.R0)
	b.MovImm(asm.R2, 32)
	b.MovImm(asm.R3, 0xDEAD)
	b.Kfunc(core.KfFindU32)
	b.Exit()
	if got := runKfuncProg(t, machine, b, nil, verifier.Options{}); got != 5 {
		t.Fatalf("find = %d, want 5", got)
	}
}

func TestBucketListKfuncLifecycle(t *testing.T) {
	// The get-or-init pattern of Listing 5: create a list-buckets
	// instance from the program, persist its handle with kptr_xchg,
	// insert and pop an element.
	machine := vm.New()
	core.Attach(machine, core.Config{})
	state := maps.Must(maps.NewArray(8, 1))
	fd := machine.RegisterMap(state)

	b := asm.New()
	b.Mov(asm.R6, asm.R1)
	b.StoreImm(asm.R10, -4, 0, 4)
	b.LoadMap(asm.R1, fd)
	b.Mov(asm.R2, asm.R10).AddImm(asm.R2, -4)
	b.Call(vm.HelperMapLookup)
	b.JmpImm(asm.JNE, asm.R0, 0, "have_slot")
	b.MovImm(asm.R0, 1).Exit()
	b.Label("have_slot")
	b.Mov(asm.R7, asm.R0)
	// h = bktlist_new(4 buckets, 8B elems)
	b.MovImm(asm.R1, 4)
	b.MovImm(asm.R2, 8)
	b.Kfunc(core.KfBktNew)
	b.JmpImm(asm.JNE, asm.R0, 0, "created")
	b.MovImm(asm.R0, 2).Exit()
	b.Label("created")
	// persist: old = kptr_xchg(slot, h); old must be 0 here.
	b.Mov(asm.R2, asm.R0)
	b.Mov(asm.R1, asm.R7)
	b.Call(vm.HelperKptrXchg)
	b.JmpImm(asm.JEQ, asm.R0, 0, "no_old")
	// Nonzero old handle: destroy it.
	b.Mov(asm.R1, asm.R0)
	b.Kfunc(core.KfBktDestroy)
	b.Label("no_old")
	// reload handle and use it
	b.Load(asm.R8, asm.R7, 0, 8)
	b.JmpImm(asm.JNE, asm.R8, 0, "use")
	b.MovImm(asm.R0, 3).Exit()
	b.Label("use")
	b.StoreImm(asm.R10, -16, 0x55, 8)
	b.Mov(asm.R1, asm.R8)
	b.MovImm(asm.R2, 2) // bucket 2
	b.Mov(asm.R3, asm.R10).AddImm(asm.R3, -16)
	b.MovImm(asm.R4, 8)
	b.Kfunc(core.KfBktInsertFront)
	// first_nonempty -> 1+2
	b.Mov(asm.R1, asm.R8)
	b.MovImm(asm.R2, 0)
	b.Kfunc(core.KfBktFirstNonEmpty)
	b.Mov(asm.R9, asm.R0)
	// pop it back
	b.Mov(asm.R1, asm.R8)
	b.MovImm(asm.R2, 2)
	b.Mov(asm.R3, asm.R10).AddImm(asm.R3, -16)
	b.MovImm(asm.R4, 8)
	b.Kfunc(core.KfBktPopFront)
	b.Add(asm.R0, asm.R9) // 1 (popped) + 3 (bucket+1) = 4
	b.Exit()

	if got := runKfuncProg(t, machine, b, make([]byte, 64), verifier.Options{CtxSize: 64}); got != 4 {
		t.Fatalf("got %d, want 4", got)
	}
	// Run again: the persisted handle is reused, the freshly created
	// instance is destroyed via the old-handle path... (second create
	// happens first, then xchg returns it; ensure no error).
}

func TestMemWrapperKfuncsListing3(t *testing.T) {
	// Listing 3's list_add through the kfunc surface.
	machine := vm.New()
	lib := core.Attach(machine, core.Config{NodeDataSize: 32})
	proxy := memwrapper.Must(memwrapper.NewProxy(32, 2))
	ph := lib.NewProxyHandle(proxy)
	root, err := proxy.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	proxy.SetOwner(root)
	proxy.Release(root)
	lib.SetRoot(ph, root)
	state := maps.Must(maps.NewArray(8, 1))
	fd := machine.RegisterMap(state)
	d := state.Data()
	for i := 0; i < 8; i++ {
		d[i] = byte(ph >> (8 * i))
	}

	b := asm.New()
	b.Mov(asm.R6, asm.R1)
	b.StoreImm(asm.R10, -4, 0, 4)
	b.LoadMap(asm.R1, fd)
	b.Mov(asm.R2, asm.R10).AddImm(asm.R2, -4)
	b.Call(vm.HelperMapLookup)
	b.JmpImm(asm.JNE, asm.R0, 0, "s")
	b.MovImm(asm.R0, 1).Exit()
	b.Label("s")
	b.Load(asm.R7, asm.R0, 0, 8)
	b.JmpImm(asm.JNE, asm.R7, 0, "h")
	b.MovImm(asm.R0, 2).Exit()
	b.Label("h")
	// head = proxy_root(ph)
	b.Mov(asm.R1, asm.R7)
	b.Kfunc(core.KfProxyRoot)
	b.JmpImm(asm.JNE, asm.R0, 0, "r")
	b.MovImm(asm.R0, 3).Exit()
	b.Label("r")
	b.Mov(asm.R8, asm.R0)
	// new = node_alloc(ph, 2); set_owner; write a byte; connect head->new
	b.Mov(asm.R1, asm.R7)
	b.MovImm(asm.R2, 2)
	b.Kfunc(core.KfNodeAlloc)
	b.JmpImm(asm.JNE, asm.R0, 0, "a")
	b.Mov(asm.R1, asm.R8)
	b.Kfunc(core.KfNodeRelease)
	b.MovImm(asm.R0, 4).Exit()
	b.Label("a")
	b.Mov(asm.R9, asm.R0)
	b.Mov(asm.R1, asm.R9)
	b.Kfunc(core.KfNodeSetOwner)
	b.StoreImm(asm.R9, 0, 0xCD, 1)
	b.Mov(asm.R1, asm.R8)
	b.MovImm(asm.R2, 0)
	b.Mov(asm.R3, asm.R9)
	b.Kfunc(core.KfNodeConnect)
	// walk: next = node_next(head, 0); read its byte
	b.Mov(asm.R1, asm.R8)
	b.MovImm(asm.R2, 0)
	b.Kfunc(core.KfNodeNext)
	b.JmpImm(asm.JNE, asm.R0, 0, "n")
	b.Mov(asm.R1, asm.R8)
	b.Kfunc(core.KfNodeRelease)
	b.Mov(asm.R1, asm.R9)
	b.Kfunc(core.KfNodeRelease)
	b.MovImm(asm.R0, 5).Exit()
	b.Label("n")
	b.Mov(asm.R7, asm.R0) // next (the new node)
	b.Load(asm.R6, asm.R7, 0, 1)
	// release everything
	b.Mov(asm.R1, asm.R7)
	b.Kfunc(core.KfNodeRelease)
	b.Mov(asm.R1, asm.R9)
	b.Kfunc(core.KfNodeRelease)
	b.Mov(asm.R1, asm.R8)
	b.Kfunc(core.KfNodeRelease)
	b.Mov(asm.R0, asm.R6)
	b.Exit()

	got := runKfuncProg(t, machine, b, make([]byte, 64),
		verifier.Options{CtxSize: 64, StateBudget: 1 << 20})
	if got != 0xCD {
		t.Fatalf("walked value = %#x, want 0xCD", got)
	}
	if proxy.Live() != 2 {
		t.Fatalf("live nodes = %d, want 2 (root + new)", proxy.Live())
	}
}

func TestHandleTypeMismatchFailsAtRuntime(t *testing.T) {
	// A list-buckets handle passed to a pool kfunc must error.
	machine := vm.New()
	lib := core.Attach(machine, core.Config{})
	h := core.MustHandle(lib.NewBucketsHandle(4, 8, 8))
	state := maps.Must(maps.NewArray(8, 1))
	fd := machine.RegisterMap(state)
	d := state.Data()
	for i := 0; i < 8; i++ {
		d[i] = byte(h >> (8 * i))
	}
	b := asm.New()
	b.StoreImm(asm.R10, -4, 0, 4)
	b.LoadMap(asm.R1, fd)
	b.Mov(asm.R2, asm.R10).AddImm(asm.R2, -4)
	b.Call(vm.HelperMapLookup)
	b.JmpImm(asm.JNE, asm.R0, 0, "s")
	b.MovImm(asm.R0, 1).Exit()
	b.Label("s")
	b.Load(asm.R1, asm.R0, 0, 8)
	b.JmpImm(asm.JNE, asm.R1, 0, "u")
	b.MovImm(asm.R0, 2).Exit()
	b.Label("u")
	b.Kfunc(core.KfRpoolNext) // wrong object type
	b.Exit()
	prog, err := verifier.LoadAndVerify(machine, "mismatch", b.MustProgram(), verifier.Options{})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if _, err := machine.Run(prog, nil); err == nil {
		t.Fatal("type-confused handle accepted at runtime")
	}
}
