package nfd_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"enetstl/internal/harness"
	"enetstl/internal/nf"
	"enetstl/internal/nfcatalog"
	"enetstl/internal/nfd"
	"enetstl/internal/runtime"
)

func newTestServer(t *testing.T) (*nfd.Server, *httptest.Server) {
	t.Helper()
	srv := nfd.NewServer()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Registry.Close()
		ts.Close()
	})
	return srv, ts
}

// do issues one request and decodes the JSON response into out (when
// non-nil), returning the status code and raw body.
func do(t *testing.T, method, url, body string, out any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad response JSON %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode, data
}

// TestLifecycleAllCatalog drives the full HTTP lifecycle — create, get,
// push a batch, delete, 404 — for every catalog NF in every flavour it
// supports.
func TestLifecycleAllCatalog(t *testing.T) {
	_, ts := newTestServer(t)
	for _, name := range nfcatalog.Names() {
		for _, flavor := range nfcatalog.SupportedFlavors(name) {
			flavorS := map[nf.Flavor]string{
				nf.Kernel: "kernel", nf.EBPF: "ebpf", nf.ENetSTL: "enetstl",
			}[flavor]
			t.Run(name+"/"+flavorS, func(t *testing.T) {
				body := fmt.Sprintf(
					`{"name": %q, "flavor": %q, "trace": {"flows": 64, "packets": 300, "seed": 3}}`,
					name, flavorS)
				var st nfd.Status
				if code, data := do(t, "POST", ts.URL+"/modules", body, &st); code != http.StatusCreated {
					t.Fatalf("create: status %d: %s", code, data)
				}
				if st.State != "attached" || st.Shards != 1 {
					t.Fatalf("created %+v, want attached/1 shard", st)
				}

				var res harness.BatchResult
				code, data := do(t, "POST", ts.URL+"/modules/"+st.ID+"/packets",
					`{"flows": 64, "packets": 300, "seed": 3}`, &res)
				if code != http.StatusOK {
					t.Fatalf("ingest: status %d: %s", code, data)
				}
				if res.Packets != 300 {
					t.Fatalf("ingest replayed %d packets, want 300", res.Packets)
				}

				var got nfd.Status
				if code, _ := do(t, "GET", ts.URL+"/modules/"+st.ID, "", &got); code != http.StatusOK {
					t.Fatalf("get: status %d", code)
				}
				if got.State != "running" || got.Packets != 300 {
					t.Fatalf("after batch: %+v, want running/300", got)
				}

				if code, data := do(t, "DELETE", ts.URL+"/modules/"+st.ID, "", nil); code != http.StatusOK {
					t.Fatalf("delete: status %d: %s", code, data)
				}
				if code, _ := do(t, "GET", ts.URL+"/modules/"+st.ID, "", nil); code != http.StatusNotFound {
					t.Fatalf("deleted module still answers: status %d", code)
				}
			})
		}
	}
}

func TestCreateRejections(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct{ name, body string }{
		{"unknown nf", `{"name": "nosuch", "flavor": "kernel"}`},
		{"unsupported flavor", `{"name": "skiplist", "flavor": "ebpf"}`},
		{"bad flavor", `{"name": "bloom", "flavor": "turbo"}`},
		{"bad options", `{"name": "bloom", "flavor": "kernel", "options": {"tier": "turbo"}}`},
		{"unknown field", `{"name": "bloom", "flavor": "kernel", "nope": 1}`},
	}
	for _, c := range cases {
		if code, _ := do(t, "POST", ts.URL+"/modules", c.body, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, code)
		}
	}
	// Batches bounce off missing modules.
	if code, _ := do(t, "POST", ts.URL+"/modules/ghost-1/packets", `{"packets": 10}`, nil); code != http.StatusNotFound {
		t.Errorf("ingest into missing module: status %d, want 404", code)
	}
}

// TestConcurrentCreateDelete exercises the registry's lifecycle paths
// from racing handlers: creates, batches, lists, scrapes, and deletes
// all interleave. Run under -race this pins the locking design.
func TestConcurrentCreateDelete(t *testing.T) {
	_, ts := newTestServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"cmsketch", "bloom", "conntrack", "heavykeeper"}
			name := names[w%len(names)]
			for i := 0; i < 4; i++ {
				body := fmt.Sprintf(
					`{"name": %q, "flavor": "kernel", "options": {"stats": true}, "trace": {"flows": 32, "packets": 100, "seed": 5}}`,
					name)
				var st nfd.Status
				if code, data := do(t, "POST", ts.URL+"/modules", body, &st); code != http.StatusCreated {
					t.Errorf("worker %d: create status %d: %s", w, code, data)
					return
				}
				do(t, "POST", ts.URL+"/modules/"+st.ID+"/packets", `{"flows": 32, "packets": 200, "seed": 5}`, nil)
				do(t, "GET", ts.URL+"/modules", "", nil)
				do(t, "GET", ts.URL+"/metrics", "", nil)
				if code, _ := do(t, "DELETE", ts.URL+"/modules/"+st.ID, "", nil); code != http.StatusOK {
					t.Errorf("worker %d: delete status %d", w, code)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var list struct {
		Modules []nfd.Status `json:"modules"`
	}
	do(t, "GET", ts.URL+"/modules", "", &list)
	if len(list.Modules) != 0 {
		t.Fatalf("%d modules survived the churn", len(list.Modules))
	}
}

// TestQuotaEnforcement pins the 429 semantics: a quota-limited module
// sheds (429 with partial results) while an unlimited sibling on the
// same daemon replays the same stream untouched, and the shed counters
// are visible at /metrics. Construction-time quotas 429 at create.
func TestQuotaEnforcement(t *testing.T) {
	_, ts := newTestServer(t)

	// Tenant A: one instruction per arrival tick — sheds almost
	// everything. Tenant B: no quota.
	var limited, unlimited nfd.Status
	if code, data := do(t, "POST", ts.URL+"/modules",
		`{"name": "cmsketch", "flavor": "enetstl",
		  "options": {"quota": {"insn_budget": 1}},
		  "trace": {"flows": 64, "packets": 500, "seed": 7}}`, &limited); code != http.StatusCreated {
		t.Fatalf("create limited: status %d: %s", code, data)
	}
	if !limited.Guarded {
		t.Fatal("insn-budget quota did not arm the guard")
	}
	if code, data := do(t, "POST", ts.URL+"/modules",
		`{"name": "cmsketch", "flavor": "enetstl",
		  "trace": {"flows": 64, "packets": 500, "seed": 7}}`, &unlimited); code != http.StatusCreated {
		t.Fatalf("create unlimited: status %d: %s", code, data)
	}

	batch := `{"flows": 64, "packets": 2000, "seed": 7}`
	var shedRes harness.BatchResult
	code, data := do(t, "POST", ts.URL+"/modules/"+limited.ID+"/packets", batch, &shedRes)
	if code != http.StatusTooManyRequests {
		t.Fatalf("limited ingest: status %d (shed %d): %s", code, shedRes.Shed, data)
	}
	if shedRes.Shed == 0 || shedRes.Packets != 2000 {
		t.Fatalf("limited ingest: %+v, want sheds over 2000 packets", shedRes)
	}

	var okRes harness.BatchResult
	if code, data := do(t, "POST", ts.URL+"/modules/"+unlimited.ID+"/packets", batch, &okRes); code != http.StatusOK {
		t.Fatalf("unlimited ingest: status %d: %s", code, data)
	}
	if okRes.Shed != 0 {
		t.Fatalf("unlimited sibling shed %d packets", okRes.Shed)
	}

	_, metrics := do(t, "GET", ts.URL+"/metrics", "", nil)
	if !strings.Contains(string(metrics), "nf_guard_shed_total") {
		t.Fatal("/metrics missing nf_guard_shed_total for the limited module")
	}

	// Construction-time quota: a map-memory ceiling no flow table fits
	// under fails the create with 429, not 400.
	if code, data := do(t, "POST", ts.URL+"/modules",
		`{"name": "conntrack", "flavor": "kernel",
		  "options": {"quota": {"map_bytes": 64}}}`, nil); code != http.StatusTooManyRequests {
		t.Fatalf("map-bytes breach: status %d, want 429: %s", code, data)
	}
}

// TestGoldenJSONEqualsOptions pins the API-redesign invariant: a module
// built from a JSON request body and an instance built directly from
// the equivalent runtime.Options produce identical verdict tallies and
// identical estimator state over the same seeded stream.
func TestGoldenJSONEqualsOptions(t *testing.T) {
	_, ts := newTestServer(t)

	const nfName = "cmsketch"
	seedSpec := runtime.TraceSpec{Flows: 64, Packets: 800, Seed: 11}
	batchSpec := runtime.TraceSpec{Flows: 64, Packets: 2000, Zipf: 1.1, Seed: 11}
	opts := runtime.Options{Tier: "jit", MapImpl: "flat"}

	// HTTP path: JSON-built module, one batch.
	var st nfd.Status
	if code, data := do(t, "POST", ts.URL+"/modules",
		`{"name": "cmsketch", "flavor": "enetstl",
		  "options": {"tier": "jit", "map_impl": "flat"},
		  "trace": {"flows": 64, "packets": 800, "seed": 11}}`, &st); code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", code, data)
	}
	var httpRes harness.BatchResult
	if code, data := do(t, "POST", ts.URL+"/modules/"+st.ID+"/packets",
		`{"flows": 64, "packets": 2000, "zipf": 1.1, "seed": 11}`, &httpRes); code != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", code, data)
	}

	// Direct path: Options-built instance, same seed trace, same batch.
	seedTr, err := seedSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := nfcatalog.BuildWith(opts, nfName, nf.ENetSTL, seedTr)
	if err != nil {
		t.Fatal(err)
	}
	batchTr, err := batchSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	nfcatalog.PrepareTrace(nfName, batchTr)
	directRes, _, err := harness.ReplayBatch(b.Inst, batchTr, 0)
	if err != nil {
		t.Fatal(err)
	}

	if directRes.Packets != httpRes.Packets {
		t.Fatalf("packet counts diverge: http %d, direct %d", httpRes.Packets, directRes.Packets)
	}
	for verdict, n := range directRes.VerdictMap {
		if httpRes.VerdictMap[verdict] != n {
			t.Fatalf("verdict %q diverges: http %d, direct %d (http %v, direct %v)",
				verdict, httpRes.VerdictMap[verdict], n, httpRes.VerdictMap, directRes.VerdictMap)
		}
	}

	// Estimator state: both instances saw the same stream through the
	// same tier and map core, so per-flow estimates must match exactly.
	for i := 0; i < 8; i++ {
		var est struct {
			Estimate uint32 `json:"estimate"`
		}
		url := fmt.Sprintf("%s/modules/%s/estimates?flow=%d", ts.URL, st.ID, i)
		if code, data := do(t, "GET", url, "", &est); code != http.StatusOK {
			t.Fatalf("estimate flow %d: status %d: %s", i, code, data)
		}
		want := b.Est(seedTr.FlowKeys[i][:])
		if est.Estimate != want {
			t.Fatalf("flow %d estimate diverges: http %d, direct %d", i, est.Estimate, want)
		}
	}
}

// TestShardedModule exercises the multi-shard build and ingest path
// over HTTP, including the per-CPU backing.
func TestShardedModule(t *testing.T) {
	_, ts := newTestServer(t)
	var st nfd.Status
	if code, data := do(t, "POST", ts.URL+"/modules",
		`{"name": "conntrack", "flavor": "kernel",
		  "options": {"shards": 4, "percpu": true, "stats": true},
		  "trace": {"flows": 128, "packets": 1000, "seed": 9}}`, &st); code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", code, data)
	}
	if st.Shards != 4 {
		t.Fatalf("built %d shards, want 4", st.Shards)
	}
	var res harness.BatchResult
	if code, data := do(t, "POST", ts.URL+"/modules/"+st.ID+"/packets",
		`{"flows": 128, "packets": 1000, "seed": 9}`, &res); code != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", code, data)
	}
	if res.Packets != 1000 {
		t.Fatalf("sharded ingest replayed %d packets, want 1000", res.Packets)
	}
	if code, _ := do(t, "DELETE", ts.URL+"/modules/"+st.ID, "", nil); code != http.StatusOK {
		t.Fatalf("delete failed")
	}
}
