// Package nfd is the long-lived NF daemon: an HTTP control plane that
// loads, configures, runs, and tears down NF module instances at
// runtime. A module is one catalog NF built under a per-instance
// runtime.Options value (tier, map core, shards, quotas, guard,
// tracing) — the same serializable struct the CLIs parse from flags, so
// a JSON request body and a flag set construct bit-identically the same
// instance. Packet streams are pushed in batches over HTTP and replayed
// through the module's persistent instances; the obs plane mounts on
// the same listener.
package nfd

import (
	"fmt"
	"sync"
	"time"

	"enetstl/internal/ebpf/vm"
	"enetstl/internal/guard"
	"enetstl/internal/harness"
	"enetstl/internal/nf"
	"enetstl/internal/nfcatalog"
	"enetstl/internal/pktgen"
	"enetstl/internal/runtime"
	"enetstl/internal/telemetry"
	"enetstl/internal/trace"
)

// State is a module's lifecycle position. Transitions only move
// forward: created → attached → running → draining → deleted.
type State int

// The lifecycle states.
const (
	// StateCreated: instances are built and tables preloaded.
	StateCreated State = iota
	// StateAttached: instrumentation (stats, recorder, metrics
	// gatherer) is wired; the module is visible at /metrics.
	StateAttached
	// StateRunning: at least one packet batch has been replayed.
	StateRunning
	// StateDraining: a delete is waiting for the in-flight batch.
	StateDraining
	// StateDeleted: terminal; the module is gone from the registry.
	StateDeleted
)

func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateAttached:
		return "attached"
	case StateRunning:
		return "running"
	case StateDraining:
		return "draining"
	case StateDeleted:
		return "deleted"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// CreateRequest is the POST /modules body.
type CreateRequest struct {
	// Name is the catalog NF name (nfcatalog.Names).
	Name string `json:"name"`
	// Flavor is kernel | ebpf | enetstl.
	Flavor string `json:"flavor"`
	// Options configures the instance; the zero value inherits the
	// daemon's process defaults.
	Options runtime.Options `json:"options,omitempty"`
	// Trace seeds the module's tables (flow keys preloaded into
	// switches, filters, classifiers) and anchors the estimator flow
	// keys. Defaults to the spec defaults (256 flows, seed 1).
	Trace runtime.TraceSpec `json:"trace,omitempty"`
}

// Module is one live NF instance set (one instance per shard) plus its
// instrumentation. Batches and lifecycle transitions serialize on mu,
// so a delete draining the module waits for the in-flight batch.
type Module struct {
	ID     string          `json:"id"`
	Name   string          `json:"name"`
	Flavor string          `json:"flavor"`
	Opts   runtime.Options `json:"options"`

	mu       sync.Mutex
	state    State
	insts    []nf.Instance // per shard; guard-wrapped when guarded
	guards   []*guard.Guard
	built    []nfcatalog.Built
	sharded  *nfcatalog.Sharded
	stats    *vm.Stats
	rec      *trace.Recorder
	flows    [][nf.KeyLen]byte
	tickBase []uint64
	batches  uint64
	packets  uint64
	shed     uint64
	created  time.Time
}

// Status is the serializable module view.
type Status struct {
	ID      string          `json:"id"`
	Name    string          `json:"name"`
	Flavor  string          `json:"flavor"`
	State   string          `json:"state"`
	Options runtime.Options `json:"options"`
	Shards  int             `json:"shards"`
	Batches uint64          `json:"batches"`
	Packets uint64          `json:"packets"`
	Shed    uint64          `json:"shed"`
	Guarded bool            `json:"guarded"`
}

// Status snapshots the module.
func (m *Module) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Status{
		ID: m.ID, Name: m.Name, Flavor: m.Flavor,
		State: m.state.String(), Options: m.Opts,
		Shards: len(m.insts), Batches: m.batches, Packets: m.packets,
		Shed: m.shed, Guarded: len(m.guards) > 0,
	}
}

// Registry is the concurrency-safe module table.
type Registry struct {
	mu   sync.RWMutex
	mods map[string]*Module
	seq  uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{mods: make(map[string]*Module)}
}

// List returns the module statuses, in no particular order.
func (r *Registry) List() []Status {
	r.mu.RLock()
	mods := make([]*Module, 0, len(r.mods))
	for _, m := range r.mods {
		mods = append(mods, m)
	}
	r.mu.RUnlock()
	out := make([]Status, len(mods))
	for i, m := range mods {
		out[i] = m.Status()
	}
	return out
}

// Get looks a module up by id.
func (r *Registry) Get(id string) (*Module, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.mods[id]
	return m, ok
}

// Create builds a module from req: instances constructed under the
// request's scoped Options (created), then instrumentation attached
// (attached). Quota breaches surface as runtime.ErrQuota.
func (r *Registry) Create(req CreateRequest) (*Module, error) {
	flavor, err := nf.ParseFlavor(req.Flavor)
	if err != nil {
		return nil, err
	}
	if !knownName(req.Name) {
		return nil, fmt.Errorf("unknown NF %q", req.Name)
	}
	if !flavorSupported(req.Name, flavor) {
		return nil, fmt.Errorf("%s has no %s flavour", req.Name, flavor)
	}
	o := req.Options
	if err := o.Validate(); err != nil {
		return nil, err
	}
	seedTrace, err := req.Trace.Build()
	if err != nil {
		return nil, err
	}
	shards := o.Shards
	if shards <= 0 {
		shards = 1
	}

	m := &Module{
		Name: req.Name, Flavor: flavor.String(), Opts: o.Canon(),
		flows: seedTrace.FlowKeys, tickBase: make([]uint64, shards),
		created: time.Now(),
	}

	// Construction, scoped: tier/map-core selection and the map-memory
	// and rpool quotas apply to everything built here and nothing else.
	m.built, err = runtime.Under(o, func() ([]nfcatalog.Built, error) {
		if shards == 1 {
			b, err := nfcatalog.BuildFull(req.Name, flavor, seedTrace)
			if err != nil {
				return nil, err
			}
			return []nfcatalog.Built{b}, nil
		}
		var sh *nfcatalog.Sharded
		var err error
		if o.PerCPU {
			sh, err = nfcatalog.NewShardedPerCPU(req.Name, flavor, shards)
			if err != nil {
				return nil, err
			}
		} else {
			sh = nfcatalog.NewSharded(req.Name, flavor)
		}
		nfcatalog.PrepareTrace(req.Name, seedTrace)
		subs := seedTrace.Shard(shards)
		out := make([]nfcatalog.Built, shards)
		for i := range out {
			b, err := sh.BuildFull(i, subs[i])
			if err != nil {
				return nil, err
			}
			out[i] = b
		}
		m.sharded = sh
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	m.state = StateCreated

	// Attachment: per-instance stats (never the global VM registry — a
	// daemon must retain nothing after module delete), flight recorder,
	// guards carrying the catalog's per-NF policy wiring.
	if o.Stats {
		m.stats = vm.NewStats()
	}
	if t := o.Trace; t != nil {
		m.rec = trace.NewRecorder(t.Config())
	}
	gcfg, guarded := o.GuardConfig()
	m.insts = make([]nf.Instance, shards)
	for i, b := range m.built {
		inst := b.Inst
		if m.stats != nil {
			vms := runtime.VMs(inst)
			for _, machine := range vms {
				machine.SetStats(m.stats)
			}
			if len(vms) == 0 {
				inst = runtime.Meter(inst, m.stats)
			}
		}
		if m.rec != nil {
			runtime.AttachRecorder(inst, m.rec)
		}
		if guarded {
			g := guard.New(req.Name, i, gcfg)
			b.WireGuard(g)
			m.guards = append(m.guards, g)
			inst = g.Wrap(inst)
		}
		m.insts[i] = inst
	}
	m.state = StateAttached

	r.mu.Lock()
	r.seq++
	m.ID = fmt.Sprintf("%s-%d", req.Name, r.seq)
	r.mods[m.ID] = m
	r.mu.Unlock()
	return m, nil
}

// Ingest replays one batch spec through the module. The batch trace
// gets the NF's op mix (exactly as the CLIs prepare traces) unless it
// is a raw replay, then is hash-partitioned across the module's shards.
// Guard ticks continue from the previous batch per shard.
func (m *Module) Ingest(spec runtime.TraceSpec) (harness.BatchResult, error) {
	tr, err := spec.Build()
	if err != nil {
		return harness.BatchResult{}, err
	}
	if len(spec.Raw) == 0 {
		nfcatalog.PrepareTrace(m.Name, tr)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StateAttached && m.state != StateRunning {
		return harness.BatchResult{}, fmt.Errorf("module is %s", m.state)
	}

	var total harness.BatchResult
	replayOne := func(shard int, sub *pktgen.Trace) error {
		res, next, err := harness.ReplayBatch(m.insts[shard], sub, m.tickBase[shard])
		m.tickBase[shard] = next
		total.Packets += res.Packets
		total.Shed += res.Shed
		total.Sampled += res.Sampled
		total.Ns += res.Ns
		total.Verdicts.Aborted += res.Verdicts.Aborted
		total.Verdicts.Drop += res.Verdicts.Drop
		total.Verdicts.Pass += res.Verdicts.Pass
		total.Verdicts.Tx += res.Verdicts.Tx
		total.Verdicts.Other += res.Verdicts.Other
		return err
	}
	if len(m.insts) == 1 {
		err = replayOne(0, tr)
	} else {
		for i, sub := range tr.Shard(len(m.insts)) {
			if e := replayOne(i, sub); e != nil && err == nil {
				err = e
			}
		}
	}
	total.VerdictMap = map[string]uint64{
		"aborted": total.Verdicts.Aborted,
		"drop":    total.Verdicts.Drop,
		"pass":    total.Verdicts.Pass,
		"tx":      total.Verdicts.Tx,
		"other":   total.Verdicts.Other,
	}
	m.state = StateRunning
	m.batches++
	m.packets += uint64(total.Packets)
	m.shed += total.Shed
	return total, err
}

// Estimate probes the module's control-plane estimator for key,
// summing across shards (the merge-on-read a kernel control plane
// performs over per-CPU maps). ok is false when the NF has none.
func (m *Module) Estimate(key []byte) (uint32, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sharded != nil {
		return m.sharded.Estimate(key)
	}
	var est uint32
	ok := false
	for _, b := range m.built {
		if b.Est != nil {
			est += b.Est(key)
			ok = true
		}
	}
	return est, ok
}

// FlowKey resolves seed-trace flow i's key, for estimator probes by
// flow index.
func (m *Module) FlowKey(i int) ([]byte, bool) {
	if i < 0 || i >= len(m.flows) {
		return nil, false
	}
	return m.flows[i][:], true
}

// DrainTrace consumes up to max events from the module's flight
// recorder; nil when tracing is off.
func (m *Module) DrainTrace(max int) []trace.Event {
	if m.rec == nil {
		return nil
	}
	return m.rec.Drain(max)
}

// Publish writes the module's live counters into reg — the per-module
// gatherer behind the daemon's /metrics.
func (m *Module) Publish(reg *telemetry.Registry) {
	m.mu.Lock()
	guards := m.guards
	stats := m.stats
	rec := m.rec
	state := m.state
	batches, packets := m.batches, m.packets
	m.mu.Unlock()
	lbl := []telemetry.Label{
		telemetry.L("module", m.ID), telemetry.L("nf", m.Name),
		telemetry.L("flavor", m.Flavor),
	}
	reg.SetHelp("nfd_module_state", "lifecycle state (created=0 attached=1 running=2 draining=3)")
	reg.Gauge("nfd_module_state", lbl...).Set(float64(state))
	reg.SetHelp("nfd_module_batches_total", "packet batches replayed")
	reg.Counter("nfd_module_batches_total", lbl...).Add(batches)
	reg.SetHelp("nfd_module_packets_total", "packets pushed through the module")
	reg.Counter("nfd_module_packets_total", lbl...).Add(packets)
	for _, g := range guards {
		g.Publish(reg)
	}
	if stats != nil {
		stats.Publish(reg)
	}
	if rec != nil {
		rec.Publish(reg)
	}
}

// delete transitions the module out of service: it waits (on mu) for
// any in-flight batch, marks draining, detaches instrumentation, and
// marks deleted. Idempotence is the registry's job.
func (m *Module) delete() {
	m.mu.Lock()
	m.state = StateDraining
	insts := m.insts
	m.mu.Unlock()
	// Drain point: the batch that was in flight when Delete was called
	// has finished (we held mu); new batches see draining and bounce.
	for _, inst := range insts {
		runtime.AttachRecorder(inst, nil)
	}
	m.mu.Lock()
	m.state = StateDeleted
	m.insts, m.guards, m.built, m.stats, m.rec = nil, nil, nil, nil, nil
	m.sharded = nil
	m.mu.Unlock()
}

// Delete gracefully removes id: the module drains (in-flight batch
// completes, subsequent batches are rejected), its instrumentation
// detaches, and it leaves the registry.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	m, ok := r.mods[id]
	if ok {
		delete(r.mods, id)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("no module %q", id)
	}
	m.delete()
	return nil
}

// Close drains and deletes every module — daemon shutdown.
func (r *Registry) Close() {
	for _, s := range r.List() {
		r.Delete(s.ID) //nolint:errcheck // racing deletes are fine
	}
}

// Publish writes every module's counters into reg.
func (r *Registry) Publish(reg *telemetry.Registry) {
	r.mu.RLock()
	mods := make([]*Module, 0, len(r.mods))
	for _, m := range r.mods {
		mods = append(mods, m)
	}
	r.mu.RUnlock()
	reg.SetHelp("nfd_modules", "live modules in the registry")
	reg.Gauge("nfd_modules").Set(float64(len(mods)))
	for _, m := range mods {
		m.Publish(reg)
	}
}

func knownName(name string) bool {
	for _, n := range nfcatalog.Names() {
		if n == name {
			return true
		}
	}
	return false
}

func flavorSupported(name string, fl nf.Flavor) bool {
	for _, f := range nfcatalog.SupportedFlavors(name) {
		if f == fl {
			return true
		}
	}
	return false
}
