// The daemon's REST surface:
//
//	GET    /modules               list modules
//	POST   /modules               create (CreateRequest body)
//	GET    /modules/{id}          one module's status
//	DELETE /modules/{id}          graceful drain + delete
//	POST   /modules/{id}/packets  replay a batch (TraceSpec body);
//	                              429 when the module's guard shed
//	GET    /modules/{id}/stats    per-module VM stats snapshot
//	GET    /modules/{id}/trace    per-module flight-recorder JSONL
//	GET    /modules/{id}/estimates?flow=N | ?key=HEX
//	/metrics /trace /profile /debug/pprof  the obs plane
package nfd

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"

	"enetstl/internal/harness"
	"enetstl/internal/obs"
	"enetstl/internal/runtime"
	"enetstl/internal/telemetry"
)

// Server glues the registry to HTTP and mounts the obs plane on the
// same mux.
type Server struct {
	Registry *Registry
	Obs      *obs.Server

	mu      sync.Mutex
	httpSrv *http.Server
}

// NewServer builds a daemon server with a bare obs plane (per-module
// gatherers only — the global VM stats switch stays off, so nothing is
// retained after a module is deleted).
func NewServer() *Server {
	s := &Server{Registry: NewRegistry(), Obs: obs.NewBare()}
	s.Obs.AddGatherer(func(reg *telemetry.Registry) { s.Registry.Publish(reg) })
	return s
}

// Handler builds the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /modules", s.handleList)
	mux.HandleFunc("POST /modules", s.handleCreate)
	mux.HandleFunc("GET /modules/{id}", s.handleGet)
	mux.HandleFunc("DELETE /modules/{id}", s.handleDelete)
	mux.HandleFunc("POST /modules/{id}/packets", s.handlePackets)
	mux.HandleFunc("GET /modules/{id}/stats", s.handleStats)
	mux.HandleFunc("GET /modules/{id}/trace", s.handleModuleTrace)
	mux.HandleFunc("GET /modules/{id}/estimates", s.handleEstimates)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	s.Obs.Mount(mux)
	return mux
}

// Start serves the daemon mux (lifecycle routes + mounted obs plane)
// in the background on addr (":0" picks a free port), returning the
// bound address.
func (s *Server) Start(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.httpSrv != nil {
		return "", fmt.Errorf("nfd: server already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go s.httpSrv.Serve(ln) //nolint:errcheck // ErrServerClosed on Shutdown
	return ln.Addr().String(), nil
}

// Shutdown drains every module, then gracefully stops the listener
// (bounded by ctx). The server is restartable afterwards.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Registry.Close()
	s.mu.Lock()
	srv := s.httpSrv
	s.httpSrv = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"service": "nfd",
		"endpoints": []string{
			"GET /modules", "POST /modules", "GET /modules/{id}",
			"DELETE /modules/{id}", "POST /modules/{id}/packets",
			"GET /modules/{id}/stats", "GET /modules/{id}/trace",
			"GET /modules/{id}/estimates", "/metrics", "/trace", "/profile",
		},
	})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"modules": s.Registry.List()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decodeStrict(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	m, err := s.Registry.Create(req)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, runtime.ErrQuota) {
			// Construction-time quota breach (map memory, rpool
			// capacity): same status as datapath shedding.
			code = http.StatusTooManyRequests
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusCreated, m.Status())
}

func (s *Server) module(w http.ResponseWriter, r *http.Request) (*Module, bool) {
	id := r.PathValue("id")
	m, ok := s.Registry.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no module %q", id))
		return nil, false
	}
	return m, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if m, ok := s.module(w, r); ok {
		writeJSON(w, http.StatusOK, m.Status())
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Registry.Delete(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

func (s *Server) handlePackets(w http.ResponseWriter, r *http.Request) {
	m, ok := s.module(w, r)
	if !ok {
		return
	}
	var spec runtime.TraceSpec
	if err := decodeStrict(r, &spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := m.Ingest(spec)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	code := http.StatusOK
	if res.Shed > 0 {
		// The guard shed under this batch: the tenant is over its insn
		// budget. The body still carries the partial results — sheds are
		// graceful degradation, not failures.
		code = http.StatusTooManyRequests
	}
	writeJSON(w, code, res)
}

// statsSnapshot is the GET /modules/{id}/stats view.
type statsSnapshot struct {
	Prog      string `json:"prog"`
	RunCnt    uint64 `json:"run_cnt"`
	RunTimeNs uint64 `json:"run_time_ns"`
	Insns     uint64 `json:"insns"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	m, ok := s.module(w, r)
	if !ok {
		return
	}
	m.mu.Lock()
	st := m.stats
	m.mu.Unlock()
	out := []statsSnapshot{}
	if st != nil {
		for _, name := range st.ProgNames() {
			ps, ok := st.ProgSnapshot(name)
			if !ok {
				continue
			}
			out = append(out, statsSnapshot{
				Prog: name, RunCnt: ps.RunCnt, RunTimeNs: ps.RunTimeNs, Insns: ps.Insns,
			})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"module": m.ID, "programs": out})
}

func (s *Server) handleModuleTrace(w http.ResponseWriter, r *http.Request) {
	m, ok := s.module(w, r)
	if !ok {
		return
	}
	limit := 10000
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		limit = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	written := 0
	for written < limit {
		batch := m.DrainTrace(min(4096, limit-written))
		if len(batch) == 0 {
			break
		}
		for _, ev := range batch {
			if enc.Encode(ev) != nil {
				return // client gone
			}
			written++
		}
	}
}

func (s *Server) handleEstimates(w http.ResponseWriter, r *http.Request) {
	m, ok := s.module(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	var key []byte
	switch {
	case q.Get("key") != "":
		b, err := hex.DecodeString(q.Get("key"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad key hex: %w", err))
			return
		}
		key = b
	case q.Get("flow") != "":
		i, err := strconv.Atoi(q.Get("flow"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad flow %q", q.Get("flow")))
			return
		}
		k, ok := m.FlowKey(i)
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("flow %d outside seed trace", i))
			return
		}
		key = k
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("need ?flow=N or ?key=HEX"))
		return
	}
	est, ok := m.Estimate(key)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%s has no control-plane estimator", m.Name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"module": m.ID, "key": hex.EncodeToString(key), "estimate": est,
	})
}

// BatchResponse documents the POST packets body shape for clients; the
// handler writes harness.BatchResult directly.
type BatchResponse = harness.BatchResult

func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
