package listbuckets

import "testing"

// Component-level list-buckets benchmarks (Table 2's list-buckets row).

func BenchmarkPushPop(b *testing.B) {
	lb := Must(New(1024, 16, 2048))
	var e [16]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lb.PushBack(i&1023, e[:])
		lb.PopFront(i&1023, e[:])
	}
}

func BenchmarkInsertFront(b *testing.B) {
	lb := Must(New(64, 16, 2048))
	var e [16]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lb.InsertFront(i&63, e[:])
		if i&1023 == 1023 {
			b.StopTimer()
			for j := 0; j < 64; j++ {
				lb.Drain(j, nil)
			}
			b.StartTimer()
		}
	}
}

func BenchmarkFirstNonEmpty(b *testing.B) {
	lb := Must(New(4096, 8, 16))
	lb.PushBack(4000, make([]byte, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if lb.FirstNonEmpty(0) != 4000 {
			b.Fatal("scan broken")
		}
	}
}
