// Package listbuckets implements eNetSTL's list-buckets data structure
// (paper §4.3, "Data structure: list-buckets"): an array of FIFO/LIFO
// queues over one slab allocator, addressed by bucket index through a
// unified API. It avoids the two costs of eBPF's native linked lists:
// per-operation spin locks (list-buckets instances are per-CPU and
// lock-free) and one bpf_map_lookup_elem per list (all buckets live in
// one object). A non-empty bitmap provides O(n/64) first-bucket scans.
package listbuckets

import (
	"errors"
	"fmt"

	"enetstl/internal/bitops"
)

const nilIdx = -1

// ErrConfig reports an invalid list-buckets configuration.
var ErrConfig = errors.New("listbuckets: invalid configuration")

// ListBuckets is a set of n element queues with fixed-size elements,
// backed by a slab with a free list so steady-state operation does not
// allocate.
type ListBuckets struct {
	elemSize int
	heads    []int32
	tails    []int32
	lens     []int32
	occupied bitops.Bitmap

	next []int32
	data []byte
	free int32
	used int
}

// Must unwraps a New result, panicking on error; for call sites with
// static, pre-validated sizes.
func Must(lb *ListBuckets, err error) *ListBuckets {
	if err != nil {
		panic(err)
	}
	return lb
}

// New creates nBuckets queues holding elemSize-byte elements, with
// capacity for cap elements across all buckets before the slab grows.
func New(nBuckets, elemSize, capacity int) (*ListBuckets, error) {
	if nBuckets <= 0 || elemSize <= 0 {
		return nil, fmt.Errorf("%w: %d buckets of %d-byte elements", ErrConfig, nBuckets, elemSize)
	}
	if capacity < 1 {
		capacity = 1
	}
	lb := &ListBuckets{
		elemSize: elemSize,
		heads:    make([]int32, nBuckets),
		tails:    make([]int32, nBuckets),
		lens:     make([]int32, nBuckets),
		occupied: bitops.NewBitmap(nBuckets),
		free:     nilIdx,
	}
	for i := range lb.heads {
		lb.heads[i] = nilIdx
		lb.tails[i] = nilIdx
	}
	lb.grow(capacity)
	return lb, nil
}

// CheckInvariants walks every bucket chain and audits the structure:
// chain lengths must match the per-bucket counters and sum to the used
// count, the occupancy bitmap must mirror non-emptiness, tails must be
// reachable, and no chain may cycle. The chaos harness runs it after
// every fault storm.
func (lb *ListBuckets) CheckInvariants() error {
	total := 0
	for i := range lb.heads {
		n := 0
		last := int32(nilIdx)
		for idx := lb.heads[i]; idx != nilIdx; idx = lb.next[idx] {
			if idx < 0 || int(idx) >= len(lb.next) {
				return fmt.Errorf("listbuckets: bucket %d links out of range (%d)", i, idx)
			}
			last = idx
			n++
			if n > lb.used {
				return fmt.Errorf("listbuckets: bucket %d chain cycles", i)
			}
		}
		if int32(n) != lb.lens[i] {
			return fmt.Errorf("listbuckets: bucket %d walked %d elements, counter says %d", i, n, lb.lens[i])
		}
		if lb.tails[i] != last {
			return fmt.Errorf("listbuckets: bucket %d tail %d unreachable (last is %d)", i, lb.tails[i], last)
		}
		if got, want := lb.occupied.Test(i), n > 0; got != want {
			return fmt.Errorf("listbuckets: bucket %d occupancy bit %v, want %v", i, got, want)
		}
		total += n
	}
	if total != lb.used {
		return fmt.Errorf("listbuckets: chains hold %d elements, used counter says %d", total, lb.used)
	}
	return nil
}

// NumBuckets returns the number of queues.
func (lb *ListBuckets) NumBuckets() int { return len(lb.heads) }

// ElemSize returns the element payload size in bytes.
func (lb *ListBuckets) ElemSize() int { return lb.elemSize }

// Len returns the number of elements queued in bucket i.
func (lb *ListBuckets) Len(i int) int { return int(lb.lens[i]) }

// TotalLen returns the number of elements across all buckets.
func (lb *ListBuckets) TotalLen() int { return lb.used }

func (lb *ListBuckets) grow(n int) {
	base := len(lb.next)
	for i := 0; i < n; i++ {
		lb.next = append(lb.next, lb.free)
		lb.free = int32(base + i)
	}
	lb.data = append(lb.data, make([]byte, n*lb.elemSize)...)
}

func (lb *ListBuckets) alloc() int32 {
	if lb.free == nilIdx {
		lb.grow(len(lb.next) + 1)
	}
	idx := lb.free
	lb.free = lb.next[idx]
	lb.used++
	return idx
}

func (lb *ListBuckets) release(idx int32) {
	lb.next[idx] = lb.free
	lb.free = idx
	lb.used--
}

func (lb *ListBuckets) slot(idx int32) []byte {
	off := int(idx) * lb.elemSize
	return lb.data[off : off+lb.elemSize]
}

// InsertFront pushes data onto the front of bucket i (LIFO insert — the
// bktlist_insert_front of Listing 5).
func (lb *ListBuckets) InsertFront(i int, data []byte) {
	idx := lb.alloc()
	copy(lb.slot(idx), data)
	lb.next[idx] = lb.heads[i]
	if lb.heads[i] == nilIdx {
		lb.tails[i] = idx
	}
	lb.heads[i] = idx
	lb.lens[i]++
	lb.occupied.Set(i)
}

// PushBack appends data to the back of bucket i (FIFO insert).
func (lb *ListBuckets) PushBack(i int, data []byte) {
	idx := lb.alloc()
	copy(lb.slot(idx), data)
	lb.next[idx] = nilIdx
	if lb.tails[i] == nilIdx {
		lb.heads[i] = idx
	} else {
		lb.next[lb.tails[i]] = idx
	}
	lb.tails[i] = idx
	lb.lens[i]++
	lb.occupied.Set(i)
}

// PopFront removes the first element of bucket i into out, reporting
// whether an element was present. out may be nil to discard.
func (lb *ListBuckets) PopFront(i int, out []byte) bool {
	idx := lb.heads[i]
	if idx == nilIdx {
		return false
	}
	if out != nil {
		copy(out, lb.slot(idx))
	}
	lb.heads[i] = lb.next[idx]
	if lb.heads[i] == nilIdx {
		lb.tails[i] = nilIdx
		lb.occupied.Clear(i)
	}
	lb.lens[i]--
	lb.release(idx)
	return true
}

// PeekFront copies the first element of bucket i into out without
// removing it.
func (lb *ListBuckets) PeekFront(i int, out []byte) bool {
	idx := lb.heads[i]
	if idx == nilIdx {
		return false
	}
	copy(out, lb.slot(idx))
	return true
}

// FirstNonEmpty returns the index of the first non-empty bucket at or
// after from, or -1 — one FFS-based bitmap scan (observation O1).
func (lb *ListBuckets) FirstNonEmpty(from int) int {
	return lb.occupied.FirstSet(from)
}

// Drain removes every element of bucket i, invoking fn on each payload
// in order. fn must not retain the slice.
func (lb *ListBuckets) Drain(i int, fn func(elem []byte)) int {
	n := 0
	for idx := lb.heads[i]; idx != nilIdx; {
		nxt := lb.next[idx]
		if fn != nil {
			fn(lb.slot(idx))
		}
		lb.release(idx)
		idx = nxt
		n++
	}
	lb.heads[i] = nilIdx
	lb.tails[i] = nilIdx
	lb.lens[i] = 0
	lb.occupied.Clear(i)
	return n
}
