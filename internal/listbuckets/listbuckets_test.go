package listbuckets

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	lb := Must(New(4, 8, 16))
	for i := 0; i < 10; i++ {
		var e [8]byte
		binary.LittleEndian.PutUint64(e[:], uint64(i))
		lb.PushBack(2, e[:])
	}
	for i := 0; i < 10; i++ {
		var e [8]byte
		if !lb.PopFront(2, e[:]) {
			t.Fatalf("pop %d: empty", i)
		}
		if got := binary.LittleEndian.Uint64(e[:]); got != uint64(i) {
			t.Fatalf("pop %d: got %d", i, got)
		}
	}
	if lb.PopFront(2, nil) {
		t.Fatal("pop from drained bucket succeeded")
	}
}

func TestLIFOOrder(t *testing.T) {
	lb := Must(New(4, 8, 16))
	for i := 0; i < 5; i++ {
		var e [8]byte
		binary.LittleEndian.PutUint64(e[:], uint64(i))
		lb.InsertFront(0, e[:])
	}
	for i := 4; i >= 0; i-- {
		var e [8]byte
		if !lb.PopFront(0, e[:]) {
			t.Fatal("unexpected empty")
		}
		if got := binary.LittleEndian.Uint64(e[:]); got != uint64(i) {
			t.Fatalf("got %d, want %d", got, i)
		}
	}
}

func TestBucketsIndependent(t *testing.T) {
	lb := Must(New(8, 4, 4))
	lb.PushBack(1, []byte{1, 0, 0, 0})
	lb.PushBack(5, []byte{5, 0, 0, 0})
	var e [4]byte
	if !lb.PopFront(5, e[:]) || e[0] != 5 {
		t.Fatalf("bucket 5 returned %v", e)
	}
	if !lb.PopFront(1, e[:]) || e[0] != 1 {
		t.Fatalf("bucket 1 returned %v", e)
	}
}

func TestOccupancyBitmap(t *testing.T) {
	lb := Must(New(128, 4, 8))
	if got := lb.FirstNonEmpty(0); got != -1 {
		t.Fatalf("FirstNonEmpty on empty = %d", got)
	}
	lb.PushBack(100, []byte{1, 2, 3, 4})
	lb.PushBack(7, []byte{1, 2, 3, 4})
	if got := lb.FirstNonEmpty(0); got != 7 {
		t.Fatalf("FirstNonEmpty(0) = %d, want 7", got)
	}
	if got := lb.FirstNonEmpty(8); got != 100 {
		t.Fatalf("FirstNonEmpty(8) = %d, want 100", got)
	}
	lb.PopFront(7, nil)
	if got := lb.FirstNonEmpty(0); got != 100 {
		t.Fatalf("after drain, FirstNonEmpty = %d, want 100", got)
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	lb := Must(New(2, 4, 2))
	lb.PushBack(0, []byte{9, 9, 9, 9})
	var a, b [4]byte
	if !lb.PeekFront(0, a[:]) || !lb.PeekFront(0, b[:]) {
		t.Fatal("peek failed")
	}
	if !bytes.Equal(a[:], b[:]) || lb.Len(0) != 1 {
		t.Fatal("peek consumed the element")
	}
}

func TestDrain(t *testing.T) {
	lb := Must(New(2, 4, 2))
	for i := 0; i < 5; i++ {
		lb.PushBack(1, []byte{byte(i), 0, 0, 0})
	}
	var seen []byte
	n := lb.Drain(1, func(e []byte) { seen = append(seen, e[0]) })
	if n != 5 || !bytes.Equal(seen, []byte{0, 1, 2, 3, 4}) {
		t.Fatalf("drain returned %d, order %v", n, seen)
	}
	if lb.Len(1) != 0 || lb.TotalLen() != 0 {
		t.Fatal("drain left residue")
	}
	if got := lb.FirstNonEmpty(0); got != -1 {
		t.Fatalf("bitmap not cleared, FirstNonEmpty = %d", got)
	}
}

func TestSlabGrowsAndRecycles(t *testing.T) {
	lb := Must(New(1, 8, 2))
	var e [8]byte
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			lb.PushBack(0, e[:])
		}
		for i := 0; i < 100; i++ {
			if !lb.PopFront(0, e[:]) {
				t.Fatal("pop failed")
			}
		}
	}
	if lb.TotalLen() != 0 {
		t.Fatalf("TotalLen = %d after balanced ops", lb.TotalLen())
	}
}

// TestModelEquivalence drives random operations against a per-bucket
// slice-of-slices model and compares observable behaviour.
func TestModelEquivalence(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nb = 8
		lb := Must(New(nb, 8, 4))
		model := make([][][8]byte, nb)
		for op := 0; op < 500; op++ {
			i := rng.Intn(nb)
			var e [8]byte
			binary.LittleEndian.PutUint64(e[:], rng.Uint64())
			switch rng.Intn(3) {
			case 0:
				lb.PushBack(i, e[:])
				model[i] = append(model[i], e)
			case 1:
				lb.InsertFront(i, e[:])
				model[i] = append([][8]byte{e}, model[i]...)
			case 2:
				var got [8]byte
				ok := lb.PopFront(i, got[:])
				if ok != (len(model[i]) > 0) {
					return false
				}
				if ok {
					if got != model[i][0] {
						return false
					}
					model[i] = model[i][1:]
				}
			}
			if lb.Len(i) != len(model[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
