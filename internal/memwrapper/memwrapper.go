// Package memwrapper implements eNetSTL's memory wrapper (paper §4.2):
// proxy-based ownership management for dynamically allocated,
// non-contiguous memory, with lazy safety checking.
//
// A Proxy centrally owns nodes (the paper stores the proxy in a BPF map,
// making every node it manages persistent). Nodes are linked through
// numbered out-slots (Connect/Disconnect/Next). Instead of validating
// every traversal, the wrapper records reverse edges and, when a node is
// freed, nils out every out-slot that pointed at it — so a slot is
// always either nil or a valid node, and Next needs no check (lazy
// safety checking). The eager alternative, kept for the ablation bench,
// validates each traversal against a live-edge set.
package memwrapper

import (
	"errors"
	"fmt"
)

// Errors returned by wrapper operations.
var (
	ErrFreed       = errors.New("memwrapper: operation on freed node")
	ErrBadSlot     = errors.New("memwrapper: out-slot index out of range")
	ErrWrongProxy  = errors.New("memwrapper: node belongs to a different proxy")
	ErrStaleEdge   = errors.New("memwrapper: traversal of invalidated edge (eager check)")
	ErrNotOwned    = errors.New("memwrapper: node is not owned by the proxy")
	ErrAllocFailed = errors.New("memwrapper: node allocation failed")
	ErrConfig      = errors.New("memwrapper: sizes must be positive")
)

type inEdge struct {
	pred *Node
	slot int
}

// Node is one dynamically allocated memory block managed by a Proxy.
type Node struct {
	proxy *Proxy
	data  []byte
	outs  []*Node
	ins   []inEdge

	ref   int32
	owned bool
	freed bool

	// VMPtr caches the node's region pointer when the node is exposed to
	// a simulated eBPF VM; unused in native-only operation.
	VMPtr uint64
}

// Data returns the node's payload. The slice aliases node storage.
func (n *Node) Data() []byte { return n.data }

// Proxy returns the proxy managing this node.
func (n *Node) Proxy() *Proxy { return n.proxy }

// Freed reports whether the node's memory has been released.
func (n *Node) Freed() bool { return n.freed }

// Ref returns the current reference count (for tests).
func (n *Node) Ref() int32 { return n.ref }

// Degree returns the number of out-slots.
func (n *Node) Degree() int { return len(n.outs) }

// Proxy centrally owns dynamically allocated nodes, standing in for the
// proxy structure the paper persists in a BPF map.
type Proxy struct {
	dataSize int
	maxOuts  int

	// Eager switches GetNext to eager per-traversal validation (the
	// strawman of §4.2, benchmarked in the lazy-vs-eager ablation).
	Eager bool

	liveEdges map[edgeKey]struct{}

	// OnFree, when set, is invoked as a node's memory is released (the
	// core facade uses it to retire the node's VM region).
	OnFree func(*Node)

	// FailAlloc, when it returns true, makes Alloc fail with
	// ErrAllocFailed — the fault plane's hook into the kernel's
	// allocation-failure surface (bpf_obj_new returning NULL).
	FailAlloc func() bool

	liveNodes int
	allocs    int
	frees     int
}

type edgeKey struct {
	pred *Node
	slot int
}

// NewProxy creates a proxy managing nodes with dataSize-byte payloads
// and at most maxOuts out-slots each.
func NewProxy(dataSize, maxOuts int) (*Proxy, error) {
	if dataSize <= 0 || maxOuts <= 0 {
		return nil, fmt.Errorf("%w: %d-byte payload, %d out-slots", ErrConfig, dataSize, maxOuts)
	}
	return &Proxy{
		dataSize:  dataSize,
		maxOuts:   maxOuts,
		liveEdges: make(map[edgeKey]struct{}),
	}, nil
}

// Must unwraps a NewProxy result, panicking on error; for call sites
// with static, pre-validated sizes.
func Must(p *Proxy, err error) *Proxy {
	if err != nil {
		panic(err)
	}
	return p
}

// DataSize returns the payload size of nodes from this proxy.
func (p *Proxy) DataSize() int { return p.dataSize }

// MaxOuts returns the out-slot count of nodes from this proxy.
func (p *Proxy) MaxOuts() int { return p.maxOuts }

// Live returns the number of live (unfreed) nodes.
func (p *Proxy) Live() int { return p.liveNodes }

// Stats returns cumulative allocation and free counts.
func (p *Proxy) Stats() (allocs, frees int) { return p.allocs, p.frees }

// Alloc creates a node with nOuts out-slots (≤ MaxOuts) and an initial
// reference held by the caller (the node_alloc of Listing 3).
func (p *Proxy) Alloc(nOuts int) (*Node, error) {
	if nOuts < 0 || nOuts > p.maxOuts {
		return nil, fmt.Errorf("%w: %d (max %d)", ErrBadSlot, nOuts, p.maxOuts)
	}
	if p.FailAlloc != nil && p.FailAlloc() {
		return nil, ErrAllocFailed
	}
	n := &Node{
		proxy: p,
		data:  make([]byte, p.dataSize),
		outs:  make([]*Node, nOuts),
		ref:   1,
	}
	p.liveNodes++
	p.allocs++
	return n, nil
}

// SetOwner transfers ownership of n to the proxy: the node stays alive
// with zero outstanding references until UnsetOwner (the set_owner of
// Listing 3, which lets node_release drop the caller's reference
// without freeing).
func (p *Proxy) SetOwner(n *Node) error {
	if err := p.checkNode(n); err != nil {
		return err
	}
	n.owned = true
	return nil
}

// UnsetOwner detaches n from proxy ownership. If no references remain
// the node is freed immediately.
func (p *Proxy) UnsetOwner(n *Node) error {
	if err := p.checkNode(n); err != nil {
		return err
	}
	if !n.owned {
		return ErrNotOwned
	}
	n.owned = false
	p.maybeFree(n)
	return nil
}

// Connect sets pred.outs[slot] = succ, replacing any previous edge (the
// node_connect of Listing 3). The reverse edge is recorded so that
// freeing succ later lazily invalidates the slot.
func (p *Proxy) Connect(pred *Node, slot int, succ *Node) error {
	if err := p.checkNode(pred); err != nil {
		return err
	}
	if err := p.checkNode(succ); err != nil {
		return err
	}
	if slot < 0 || slot >= len(pred.outs) {
		return fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	if old := pred.outs[slot]; old != nil {
		p.removeEdge(pred, slot, old)
	}
	pred.outs[slot] = succ
	succ.ins = append(succ.ins, inEdge{pred: pred, slot: slot})
	p.liveEdges[edgeKey{pred, slot}] = struct{}{}
	return nil
}

// Disconnect clears pred.outs[slot] (the node_disconnect of §4.2).
func (p *Proxy) Disconnect(pred *Node, slot int) error {
	if err := p.checkNode(pred); err != nil {
		return err
	}
	if slot < 0 || slot >= len(pred.outs) {
		return fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	if succ := pred.outs[slot]; succ != nil {
		p.removeEdge(pred, slot, succ)
		pred.outs[slot] = nil
	}
	return nil
}

// Next follows pred.outs[slot], taking a reference on the successor
// (get_next: zero safety checks in lazy mode — the invariant that the
// slot is nil or valid is maintained at free time). Returns nil when the
// slot is empty. The caller must Release the returned node.
func (p *Proxy) Next(pred *Node, slot int) (*Node, error) {
	if pred.freed {
		return nil, ErrFreed
	}
	if slot < 0 || slot >= len(pred.outs) {
		return nil, fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	succ := pred.outs[slot]
	if succ == nil {
		return nil, nil
	}
	if p.Eager {
		// The strawman: validate the relationship on every traversal.
		if _, ok := p.liveEdges[edgeKey{pred, slot}]; !ok {
			return nil, ErrStaleEdge
		}
	}
	succ.ref++
	return succ, nil
}

// Acquire takes an additional reference on n (used when handing an
// existing node, such as a designated root, to a new holder).
func (p *Proxy) Acquire(n *Node) error {
	if err := p.checkNode(n); err != nil {
		return err
	}
	n.ref++
	return nil
}

// Release drops one reference (node_release). When the last reference
// is gone and the proxy does not own the node, its memory is freed and
// — the lazy safety step — every out-slot pointing at it is cleared.
func (p *Proxy) Release(n *Node) error {
	if err := p.checkNode(n); err != nil {
		return err
	}
	if n.ref > 0 {
		n.ref--
	}
	p.maybeFree(n)
	return nil
}

func (p *Proxy) checkNode(n *Node) error {
	if n == nil || n.freed {
		return ErrFreed
	}
	if n.proxy != p {
		return ErrWrongProxy
	}
	return nil
}

func (p *Proxy) removeEdge(pred *Node, slot int, succ *Node) {
	delete(p.liveEdges, edgeKey{pred, slot})
	for i := range succ.ins {
		if succ.ins[i].pred == pred && succ.ins[i].slot == slot {
			succ.ins[i] = succ.ins[len(succ.ins)-1]
			succ.ins = succ.ins[:len(succ.ins)-1]
			return
		}
	}
}

// CheckInvariants audits the proxy's bookkeeping: every recorded live
// edge must run between unfreed nodes and still be present in the
// predecessor's out-slot, and the live-node count must reconcile with
// the alloc/free totals. The chaos harness runs it after every fault
// storm; a non-nil return means the lazy safety invariant broke.
func (p *Proxy) CheckInvariants() error {
	for e := range p.liveEdges {
		if e.pred == nil || e.pred.freed {
			return fmt.Errorf("memwrapper: live edge from freed node (slot %d)", e.slot)
		}
		if e.slot < 0 || e.slot >= len(e.pred.outs) {
			return fmt.Errorf("memwrapper: live edge with out-of-range slot %d", e.slot)
		}
		succ := e.pred.outs[e.slot]
		if succ == nil {
			return fmt.Errorf("memwrapper: live edge (slot %d) not present in out-slot", e.slot)
		}
		if succ.freed {
			return fmt.Errorf("memwrapper: out-slot %d points at freed node", e.slot)
		}
	}
	if p.liveNodes < 0 {
		return fmt.Errorf("memwrapper: negative live-node count %d", p.liveNodes)
	}
	if p.allocs-p.frees != p.liveNodes {
		return fmt.Errorf("memwrapper: live count %d != allocs %d - frees %d",
			p.liveNodes, p.allocs, p.frees)
	}
	return nil
}

func (p *Proxy) maybeFree(n *Node) {
	if n.freed || n.owned || n.ref > 0 {
		return
	}
	// Lazy safety checking: clear every incoming edge so predecessors
	// never observe a dangling pointer.
	for _, e := range n.ins {
		if !e.pred.freed && e.pred.outs[e.slot] == n {
			e.pred.outs[e.slot] = nil
			delete(p.liveEdges, edgeKey{e.pred, e.slot})
		}
	}
	n.ins = n.ins[:0]
	// Remove reverse records held by successors.
	for slot, succ := range n.outs {
		if succ != nil {
			p.removeEdge(n, slot, succ)
			n.outs[slot] = nil
		}
	}
	n.freed = true
	p.liveNodes--
	p.frees++
	if p.OnFree != nil {
		p.OnFree(n)
	}
	n.data = nil
}
