package memwrapper

import (
	"testing"
)

func alloc(t *testing.T, p *Proxy, outs int) *Node {
	t.Helper()
	n, err := p.Alloc(outs)
	if err != nil {
		t.Fatalf("alloc: %v", err)
	}
	return n
}

func TestListAddPattern(t *testing.T) {
	// The Listing 3 pattern: alloc, set_owner, connect, release.
	p := Must(NewProxy(16, 1))
	head := alloc(t, p, 1)
	if err := p.SetOwner(head); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(head); err != nil {
		t.Fatal(err)
	}
	if head.Freed() {
		t.Fatal("owned node freed on release")
	}

	for i := 0; i < 3; i++ {
		n := alloc(t, p, 1)
		if err := p.SetOwner(n); err != nil {
			t.Fatal(err)
		}
		next, err := p.Next(head, 0)
		if err != nil {
			t.Fatal(err)
		}
		if next != nil {
			if err := p.Connect(n, 0, next); err != nil {
				t.Fatal(err)
			}
			if err := p.Release(next); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Connect(head, 0, n); err != nil {
			t.Fatal(err)
		}
		n.Data()[0] = byte(i)
		if err := p.Release(n); err != nil {
			t.Fatal(err)
		}
	}

	// Walk: most recently added first (2, 1, 0).
	want := []byte{2, 1, 0}
	cur := head
	curRef := false
	for _, w := range want {
		next, err := p.Next(cur, 0)
		if err != nil {
			t.Fatal(err)
		}
		if next == nil {
			t.Fatalf("list ended early, wanted %d", w)
		}
		if next.Data()[0] != w {
			t.Fatalf("got %d, want %d", next.Data()[0], w)
		}
		if curRef {
			p.Release(cur)
		}
		cur = next
		curRef = true
	}
	if p.Live() != 4 {
		t.Fatalf("live nodes = %d, want 4", p.Live())
	}
}

func TestLazyInvalidationOnFree(t *testing.T) {
	// Free b without disconnecting a->b: a's slot must become nil, never
	// dangling (the §4.2 use-after-free scenario).
	p := Must(NewProxy(8, 2))
	a := alloc(t, p, 2)
	b := alloc(t, p, 2)
	if err := p.Connect(a, 0, b); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(b); err != nil { // b: ref 1 -> 0, not owned -> freed
		t.Fatal(err)
	}
	if !b.Freed() {
		t.Fatal("b not freed")
	}
	next, err := p.Next(a, 0)
	if err != nil {
		t.Fatalf("Next after free: %v", err)
	}
	if next != nil {
		t.Fatal("dangling pointer observable after free")
	}
}

func TestRefcountKeepsNodeAlive(t *testing.T) {
	p := Must(NewProxy(8, 1))
	a := alloc(t, p, 1)
	b := alloc(t, p, 1)
	p.Connect(a, 0, b)
	got, _ := p.Next(a, 0) // b ref = 2
	if err := p.Release(b); err != nil {
		t.Fatal(err)
	}
	if b.Freed() {
		t.Fatal("b freed while a reference is held")
	}
	if got.Data()[0] != 0 {
		t.Fatal("data unreadable")
	}
	if err := p.Release(got); err != nil {
		t.Fatal(err)
	}
	if !b.Freed() {
		t.Fatal("b not freed after last release")
	}
}

func TestOwnershipBlocksFree(t *testing.T) {
	p := Must(NewProxy(8, 1))
	n := alloc(t, p, 1)
	p.SetOwner(n)
	p.Release(n)
	if n.Freed() {
		t.Fatal("owned node freed")
	}
	if err := p.UnsetOwner(n); err != nil {
		t.Fatal(err)
	}
	if !n.Freed() {
		t.Fatal("unowned zero-ref node not freed")
	}
}

func TestConnectOverwriteUpdatesReverseEdges(t *testing.T) {
	p := Must(NewProxy(8, 1))
	a := alloc(t, p, 1)
	b := alloc(t, p, 1)
	c := alloc(t, p, 1)
	p.SetOwner(a)
	p.Connect(a, 0, b)
	p.Connect(a, 0, c) // overwrite: a->c
	// Freeing b must not clear a->c.
	p.Release(b)
	next, _ := p.Next(a, 0)
	if next != c {
		t.Fatal("overwritten edge damaged by stale reverse edge")
	}
	p.Release(next)
}

func TestDisconnect(t *testing.T) {
	p := Must(NewProxy(8, 1))
	a := alloc(t, p, 1)
	b := alloc(t, p, 1)
	p.Connect(a, 0, b)
	if err := p.Disconnect(a, 0); err != nil {
		t.Fatal(err)
	}
	if next, _ := p.Next(a, 0); next != nil {
		t.Fatal("edge survives disconnect")
	}
	// Disconnect of an empty slot is a no-op.
	if err := p.Disconnect(a, 0); err != nil {
		t.Fatal(err)
	}
}

func TestFreedNodeOperationsFail(t *testing.T) {
	p := Must(NewProxy(8, 1))
	a := alloc(t, p, 1)
	b := alloc(t, p, 1)
	p.Release(b)
	if err := p.Connect(a, 0, b); err == nil {
		t.Fatal("connect to freed node succeeded")
	}
	if err := p.SetOwner(b); err == nil {
		t.Fatal("set_owner on freed node succeeded")
	}
	if err := p.Release(b); err == nil {
		t.Fatal("double release succeeded")
	}
}

func TestWrongProxyRejected(t *testing.T) {
	p1 := Must(NewProxy(8, 1))
	p2 := Must(NewProxy(8, 1))
	a := alloc(t, p1, 1)
	if err := p2.Release(a); err == nil {
		t.Fatal("cross-proxy release succeeded")
	}
}

func TestEagerModeDetectsNothingWhenCorrect(t *testing.T) {
	p := Must(NewProxy(8, 1))
	p.Eager = true
	a := alloc(t, p, 1)
	b := alloc(t, p, 1)
	p.SetOwner(b)
	p.Connect(a, 0, b)
	n, err := p.Next(a, 0)
	if err != nil || n != b {
		t.Fatalf("eager traversal failed: %v", err)
	}
	p.Release(n)
}

func TestBadSlotErrors(t *testing.T) {
	p := Must(NewProxy(8, 2))
	a := alloc(t, p, 1)
	if _, err := p.Alloc(3); err == nil {
		t.Fatal("alloc beyond MaxOuts succeeded")
	}
	if err := p.Connect(a, 1, a); err == nil {
		t.Fatal("connect beyond node degree succeeded")
	}
	if _, err := p.Next(a, 5); err == nil {
		t.Fatal("next beyond degree succeeded")
	}
}

func TestOnFreeHook(t *testing.T) {
	p := Must(NewProxy(8, 1))
	var freed []*Node
	p.OnFree = func(n *Node) { freed = append(freed, n) }
	a := alloc(t, p, 1)
	p.Release(a)
	if len(freed) != 1 || freed[0] != a {
		t.Fatalf("OnFree calls = %v", freed)
	}
}

func TestStats(t *testing.T) {
	p := Must(NewProxy(8, 1))
	a := alloc(t, p, 1)
	_ = alloc(t, p, 1)
	p.Release(a)
	allocs, frees := p.Stats()
	if allocs != 2 || frees != 1 || p.Live() != 1 {
		t.Fatalf("stats = (%d,%d), live %d", allocs, frees, p.Live())
	}
}
