package memwrapper

import "testing"

// Component-level memory-wrapper benchmarks: traversal under lazy
// safety checking against the eager strawman (§4.2), and the
// alloc/free cycle cost.

func buildChain(eager bool, n int) (*Proxy, *Node) {
	p := Must(NewProxy(32, 1))
	p.Eager = eager
	head, _ := p.Alloc(1)
	p.SetOwner(head)
	cur := head
	for i := 0; i < n; i++ {
		nd, _ := p.Alloc(1)
		p.SetOwner(nd)
		p.Connect(cur, 0, nd)
		p.Release(nd)
		cur = nd
	}
	return p, head
}

func walk(b *testing.B, p *Proxy, head *Node) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cur := head
		held := false
		for {
			next, err := p.Next(cur, 0)
			if err != nil {
				b.Fatal(err)
			}
			if next == nil {
				break
			}
			if held {
				p.Release(cur)
			}
			cur, held = next, true
		}
		if held {
			p.Release(cur)
		}
	}
}

func BenchmarkTraverseLazy(b *testing.B) {
	p, head := buildChain(false, 64)
	b.ResetTimer()
	walk(b, p, head)
}

func BenchmarkTraverseEager(b *testing.B) {
	p, head := buildChain(true, 64)
	b.ResetTimer()
	walk(b, p, head)
}

func BenchmarkAllocConnectFree(b *testing.B) {
	p := Must(NewProxy(32, 1))
	anchor, _ := p.Alloc(1)
	p.SetOwner(anchor)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _ := p.Alloc(1)
		p.Connect(anchor, 0, n)
		p.Release(n) // freed; lazy safety clears anchor's slot
	}
}
