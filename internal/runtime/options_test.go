package runtime

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"enetstl/internal/ebpf/maps"
	"enetstl/internal/ebpf/vm"
	"enetstl/internal/rpool"
)

func TestJSONRoundTrip(t *testing.T) {
	o := Options{
		Tier:    "jit",
		MapImpl: "flat",
		Shards:  4,
		PerCPU:  true,
		Stats:   true,
		Trace:   &TraceOptions{Capacity: 4096, SampleRate: 0.5, Seed: 9},
		Guard:   &GuardOptions{Enabled: true, InsnBudget: 1000, WatchdogFactor: 16},
		Quota:   &Quota{InsnBudget: 500, MapBytes: 1 << 20, RPoolCap: 1 << 12},
	}
	data, err := o.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o, back) {
		t.Fatalf("round trip diverged:\n  in  %+v\n  out %+v", o, back)
	}
}

func TestFromJSONStrict(t *testing.T) {
	if _, err := FromJSON([]byte(`{"teir": "jit"}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := FromJSON([]byte(`{"tier": "turbo"}`)); err == nil {
		t.Fatal("bad tier accepted")
	}
}

func TestValidate(t *testing.T) {
	bad := []Options{
		{Tier: "turbo"},
		{MapImpl: "cuckoo"},
		{Shards: -1},
		{Trace: &TraceOptions{SampleRate: 1.5}},
		{Trace: &TraceOptions{Capacity: -1}},
		{Guard: &GuardOptions{ResumeFrac: 2}},
		{Quota: &Quota{MapBytes: -1}},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero Options rejected: %v", err)
	}
}

func TestCanonPinsDefaults(t *testing.T) {
	c := Options{}.Canon()
	d := Defaults()
	if c.Tier != d.Tier || c.MapImpl != d.MapImpl || c.Shards != 1 {
		t.Fatalf("Canon() = %+v, want tier %q impl %q shards 1", c, d.Tier, d.MapImpl)
	}
}

func TestGuardConfigQuotaForcesGuard(t *testing.T) {
	cfg, ok := Options{Quota: &Quota{InsnBudget: 777}}.GuardConfig()
	if !ok || !cfg.Enabled || cfg.InsnBudget != 777 {
		t.Fatalf("quota did not force guard: ok=%v cfg=%+v", ok, cfg)
	}
	if _, ok := (Options{}).GuardConfig(); ok {
		t.Fatal("zero Options claims a guard")
	}
	// Explicit guard options survive, tightened by the quota budget.
	cfg, ok = Options{
		Guard: &GuardOptions{Enabled: true, WatchdogFactor: 8},
		Quota: &Quota{InsnBudget: 99},
	}.GuardConfig()
	if !ok || cfg.WatchdogFactor != 8 || cfg.InsnBudget != 99 {
		t.Fatalf("guard+quota merge wrong: %+v", cfg)
	}
}

func TestUnderScopesAndRestores(t *testing.T) {
	prevTier, prevImpl := vm.DefaultTier(), maps.CurrentImpl()
	want, err := vm.ParseTier("jit")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Under(Options{Tier: "jit", MapImpl: "flat"}, func() (int, error) {
		if got := vm.DefaultTier(); got != want {
			t.Errorf("inside Under: tier %v, want jit", got)
		}
		if got := maps.CurrentImpl(); got != maps.ImplFlat {
			t.Errorf("inside Under: impl %v, want flat", got)
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if vm.DefaultTier() != prevTier || maps.CurrentImpl() != prevImpl {
		t.Fatalf("Under leaked: tier %v impl %v", vm.DefaultTier(), maps.CurrentImpl())
	}
}

func TestUnderMapBytesQuota(t *testing.T) {
	_, err := Under(Options{Quota: &Quota{MapBytes: 64}}, func() (maps.Map, error) {
		return maps.NewBucketHash(16, 8, 1024)
	})
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("map-bytes breach: err = %v, want ErrQuota", err)
	}
	// The same build fits an ample quota.
	m, err := Under(Options{Quota: &Quota{MapBytes: 1 << 24}}, func() (maps.Map, error) {
		return maps.NewBucketHash(16, 8, 1024)
	})
	if err != nil || m == nil {
		t.Fatalf("ample quota rejected: %v", err)
	}
}

func TestUnderRPoolQuota(t *testing.T) {
	_, err := Under(Options{Quota: &Quota{RPoolCap: 8}}, func() (*rpool.Pool, error) {
		return rpool.NewPool(1024, 1)
	})
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("rpool breach: err = %v, want ErrQuota", err)
	}
	if rpool.CapLimit() != 0 {
		t.Fatalf("rpool cap leaked: %d", rpool.CapLimit())
	}
	p, err := Under(Options{Quota: &Quota{RPoolCap: 2048}}, func() (*rpool.Pool, error) {
		return rpool.NewPool(1024, 1)
	})
	if err != nil || p == nil {
		t.Fatalf("fitting rpool rejected: %v", err)
	}
}

func TestUnderConcurrent(t *testing.T) {
	// Concurrent scoped builds must each observe their own settings —
	// the daemon creates modules from concurrent HTTP handlers.
	tiers := []string{"wire", "predecoded", "jit"}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := tiers[i%len(tiers)]
			want, _ := vm.ParseTier(name)
			_, err := Under(Options{Tier: name}, func() (int, error) {
				if got := vm.DefaultTier(); got != want {
					return 0, fmt.Errorf("goroutine %d: tier %v, want %v", i, got, want)
				}
				return 0, nil
			})
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
