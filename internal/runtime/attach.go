package runtime

import (
	"time"

	"enetstl/internal/ebpf/vm"
	"enetstl/internal/nf"
	"enetstl/internal/trace"
)

// VMs collects the machines backing an instance: the instance's own
// and, for pipelines, every stage's — the duck typing the chaos and
// guard planes already use, exported once so every attacher (stats,
// recorders, guards, the daemon) walks instances the same way.
func VMs(inst nf.Instance) []*vm.VM {
	var out []*vm.VM
	if v, ok := inst.(interface{ VM() *vm.VM }); ok {
		if m := v.VM(); m != nil {
			out = append(out, m)
		}
	}
	if s, ok := inst.(interface{ Stages() []nf.Instance }); ok {
		for _, st := range s.Stages() {
			if v, ok := st.(interface{ VM() *vm.VM }); ok {
				if m := v.VM(); m != nil {
					out = append(out, m)
				}
			}
		}
	}
	return out
}

// AttachStats attaches one shared Stats to every VM backing inst and
// returns it — per-instance metering with no global registry, so a
// long-lived daemon collecting per-module stats retains nothing after
// the module is deleted. For instances with no VMs (Kernel-flavour
// natives) it returns a fresh Stats the caller can feed through
// Metered.
func AttachStats(inst nf.Instance) *vm.Stats {
	st := vm.NewStats()
	for _, m := range VMs(inst) {
		m.SetStats(st)
	}
	return st
}

// AttachRecorder attaches (or with nil detaches) a flight recorder on
// every VM backing inst.
func AttachRecorder(inst nf.Instance, r *trace.Recorder) {
	for _, m := range VMs(inst) {
		m.SetRecorder(r)
	}
}

// Metered wraps a native (non-VM) instance so run_cnt/run_time_ns
// metering covers every flavour; VM-backed instances are metered by
// their machines and don't need it. It delegates VM()/Stages() so
// downstream attachment sees through it.
type Metered struct {
	nf.Instance
	st *vm.Stats
}

// Meter wraps inst with wall-clock run accounting into st.
func Meter(inst nf.Instance, st *vm.Stats) *Metered {
	return &Metered{Instance: inst, st: st}
}

// Process times the inner instance's handling of one packet.
func (m *Metered) Process(pkt []byte) (uint64, error) {
	start := time.Now()
	ret, err := m.Instance.Process(pkt)
	m.st.RecordRun(m.Instance.Name(), time.Since(start))
	return ret, err
}

// VM delegates to the inner instance.
func (m *Metered) VM() *vm.VM {
	if v, ok := m.Instance.(interface{ VM() *vm.VM }); ok {
		return v.VM()
	}
	return nil
}

// Stages delegates to the inner instance.
func (m *Metered) Stages() []nf.Instance {
	if s, ok := m.Instance.(interface{ Stages() []nf.Instance }); ok {
		return s.Stages()
	}
	return nil
}
