package runtime

import (
	"encoding/base64"
	"fmt"

	"enetstl/internal/nf"
	"enetstl/internal/pktgen"
)

// TraceSpec is the serializable packet-source description shared by
// the daemon's ingestion API and the CLIs' trace flags: either a
// seeded generator spec (benign or adversarial scenario) or a raw
// base64 packet list. The same spec always builds the same trace, so a
// JSON request and a flag set replay bit-identical streams.
type TraceSpec struct {
	Flows   int     `json:"flows,omitempty"`
	Packets int     `json:"packets,omitempty"`
	Zipf    float64 `json:"zipf,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	// Scenario selects an adversarial generator (syn-flood | churn |
	// hash-collision); empty means the benign zipf generator.
	Scenario string `json:"scenario,omitempty"`
	// Raw replays these base64-encoded PktSize-byte packets verbatim
	// instead of generating; the other fields are ignored.
	Raw []string `json:"raw,omitempty"`
}

func (s TraceSpec) norm() TraceSpec {
	if s.Flows <= 0 {
		s.Flows = 256
	}
	if s.Packets <= 0 {
		s.Packets = 2000
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Build materializes the trace.
func (s TraceSpec) Build() (*pktgen.Trace, error) {
	if len(s.Raw) > 0 {
		tr := &pktgen.Trace{Packets: make([]pktgen.Packet, len(s.Raw))}
		for i, enc := range s.Raw {
			b, err := base64.StdEncoding.DecodeString(enc)
			if err != nil {
				return nil, fmt.Errorf("runtime: raw packet %d: %w", i, err)
			}
			if len(b) != nf.PktSize {
				return nil, fmt.Errorf("runtime: raw packet %d is %d bytes, want %d", i, len(b), nf.PktSize)
			}
			copy(tr.Packets[i][:], b)
		}
		return tr, nil
	}
	s = s.norm()
	cfg := pktgen.Config{Flows: s.Flows, Packets: s.Packets, ZipfS: s.Zipf, Seed: s.Seed}
	if s.Scenario == "" {
		return pktgen.Generate(cfg), nil
	}
	kind, ok := pktgen.ScenarioFromString(s.Scenario)
	if !ok {
		return nil, fmt.Errorf("runtime: unknown scenario %q (syn-flood|churn|hash-collision)", s.Scenario)
	}
	return pktgen.GenerateAttack(pktgen.AttackConfig{Base: cfg, Kind: kind}), nil
}
