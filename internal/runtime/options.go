// Package runtime defines the unified options-based configuration
// surface for constructing NF instances. One serializable Options
// struct replaces the historical sprawl of process-global setters
// (vm.SetDefaultTier, maps.SetImpl, vm.SetWireInterp, ...): every
// builder — the nfd daemon's JSON module API, the nfrun/enetstl-bench
// CLIs, the benchmark harnesses — resolves the same struct, so a JSON
// request body and a CLI invocation construct bit-identically the same
// instance.
//
// The legacy globals remain as compat shims: Defaults() reads them, so
// a process that still calls vm.SetDefaultTier gets that tier as the
// baseline every Options resolution inherits. New code should never
// touch the globals directly; per-instance configuration goes through
// Under, which scopes the construction-time knobs to one build.
package runtime

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"enetstl/internal/ebpf/maps"
	"enetstl/internal/ebpf/vm"
	"enetstl/internal/guard"
	"enetstl/internal/rpool"
	"enetstl/internal/trace"
)

// ErrQuota reports a per-tenant resource quota breach at construction
// time (map memory, rpool capacity). The daemon maps it to HTTP 429.
var ErrQuota = errors.New("runtime: quota exceeded")

// Options is the per-instance runtime configuration. The zero value
// means "inherit the process defaults" for every field; the JSON
// encoding is the schema the nfd daemon accepts and the -options flag
// of the CLIs round-trips.
type Options struct {
	// Tier selects the VM execution tier for VM-backed flavours:
	// "wire" | "predecoded" | "jit". Empty inherits the process default.
	Tier string `json:"tier,omitempty"`
	// MapImpl selects the hash map core: "bucket" | "flat". Empty
	// inherits the process default.
	MapImpl string `json:"map_impl,omitempty"`
	// Shards is the RSS shard count (instances replaying concurrently
	// over a flow-hash-partitioned stream). 0 and 1 both mean unsharded.
	Shards int `json:"shards,omitempty"`
	// PerCPU backs sharded instances with one shared per-CPU map
	// (private per-shard copies) where the NF has per-CPU wiring.
	PerCPU bool `json:"percpu,omitempty"`
	// Stats enables per-instance VM statistics (the bpf_stats
	// analogue), attached at build time without the global registry.
	Stats bool `json:"stats,omitempty"`
	// Trace attaches a flight recorder with this configuration.
	Trace *TraceOptions `json:"trace,omitempty"`
	// Guard fronts the instance with the overload-guard plane.
	Guard *GuardOptions `json:"guard,omitempty"`
	// Quota sets per-tenant resource ceilings, enforced via the guard
	// plane (insn budget) and at construction (map memory, rpool).
	Quota *Quota `json:"quota,omitempty"`
}

// TraceOptions configures the per-instance flight recorder.
type TraceOptions struct {
	// Capacity is the ring size (rounded up to a power of two).
	Capacity int `json:"capacity,omitempty"`
	// SampleRate is the head-sampling rate in [0,1]; 0 defaults to 1.
	SampleRate float64 `json:"sample_rate,omitempty"`
	// Seed drives the deterministic sampling decision.
	Seed uint64 `json:"seed,omitempty"`
}

// Config converts to the trace package's configuration.
func (t *TraceOptions) Config() trace.Config {
	cfg := trace.Config{Capacity: t.Capacity, SampleRate: t.SampleRate, Seed: t.Seed}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 1
	}
	return cfg
}

// GuardOptions is the serializable face of guard.Config (the CostFn
// hook is code, not configuration, and stays out).
type GuardOptions struct {
	Enabled        bool    `json:"enabled,omitempty"`
	InsnBudget     uint64  `json:"insn_budget,omitempty"`
	AutoBudget     int     `json:"auto_budget,omitempty"`
	Headroom       float64 `json:"headroom,omitempty"`
	BurstTicks     uint64  `json:"burst_ticks,omitempty"`
	ResumeFrac     float64 `json:"resume_frac,omitempty"`
	NativeCost     uint64  `json:"native_cost,omitempty"`
	ShedVerdict    uint64  `json:"shed_verdict,omitempty"`
	WatchdogFactor uint64  `json:"watchdog_factor,omitempty"`
	WatchdogTrips  int     `json:"watchdog_trips,omitempty"`
	RecoverPackets int     `json:"recover_packets,omitempty"`
	WatermarkEvery int     `json:"watermark_every,omitempty"`
}

// Config converts to the guard package's configuration.
func (g *GuardOptions) Config() guard.Config {
	return guard.Config{
		Enabled:        g.Enabled,
		InsnBudget:     g.InsnBudget,
		AutoBudget:     g.AutoBudget,
		Headroom:       g.Headroom,
		BurstTicks:     g.BurstTicks,
		ResumeFrac:     g.ResumeFrac,
		NativeCost:     g.NativeCost,
		ShedVerdict:    g.ShedVerdict,
		WatchdogFactor: g.WatchdogFactor,
		WatchdogTrips:  g.WatchdogTrips,
		RecoverPackets: g.RecoverPackets,
		WatermarkEvery: g.WatermarkEvery,
	}
}

// Quota sets per-tenant resource ceilings. Zero fields are unlimited.
type Quota struct {
	// InsnBudget caps sustained datapath spend: it becomes a fixed
	// token-bucket budget (instructions per arrival tick) on the
	// instance's guard. Excess packets are shed, never queued.
	InsnBudget uint64 `json:"insn_budget,omitempty"`
	// MapBytes caps the summed arena footprint of every map the
	// instance constructs; breaching it fails the build with ErrQuota.
	MapBytes int `json:"map_bytes,omitempty"`
	// RPoolCap caps the capacity of any single random pool the
	// instance constructs; breaching it fails the build with ErrQuota.
	RPoolCap int `json:"rpool_cap,omitempty"`
}

// GuardConfig resolves the guard configuration the instance should run
// behind: the explicit Guard options, tightened by the insn-budget
// quota (a quota forces the guard on with a fixed, non-calibrating
// budget). ok is false when no guard is requested at all.
func (o Options) GuardConfig() (cfg guard.Config, ok bool) {
	if o.Guard != nil {
		cfg = o.Guard.Config()
		ok = cfg.Enabled
	}
	if o.Quota != nil && o.Quota.InsnBudget > 0 {
		cfg.Enabled = true
		cfg.InsnBudget = o.Quota.InsnBudget
		ok = true
	}
	return cfg, ok
}

// ResolveTier parses the tier, falling back to the process default for
// the empty string (the vm.SetDefaultTier compat shim).
func (o Options) ResolveTier() (vm.Tier, error) {
	if o.Tier == "" {
		return vm.DefaultTier(), nil
	}
	return vm.ParseTier(o.Tier)
}

// ResolveMapImpl parses the map core selector, falling back to the
// process default for the empty string (the maps.SetImpl compat shim).
func (o Options) ResolveMapImpl() (maps.Impl, error) {
	switch o.MapImpl {
	case "":
		return maps.CurrentImpl(), nil
	case "bucket":
		return maps.ImplBucket, nil
	case "flat":
		return maps.ImplFlat, nil
	}
	return 0, fmt.Errorf("runtime: unknown map_impl %q (bucket|flat)", o.MapImpl)
}

// Validate checks every field without resolving process defaults.
func (o Options) Validate() error {
	if _, err := o.ResolveTier(); err != nil {
		return err
	}
	if _, err := o.ResolveMapImpl(); err != nil {
		return err
	}
	if o.Shards < 0 {
		return fmt.Errorf("runtime: negative shards %d", o.Shards)
	}
	if t := o.Trace; t != nil {
		if t.SampleRate < 0 || t.SampleRate > 1 {
			return fmt.Errorf("runtime: trace sample_rate %v outside [0,1]", t.SampleRate)
		}
		if t.Capacity < 0 {
			return fmt.Errorf("runtime: negative trace capacity %d", t.Capacity)
		}
	}
	if g := o.Guard; g != nil && (g.ResumeFrac < 0 || g.ResumeFrac > 1) {
		return fmt.Errorf("runtime: guard resume_frac %v outside [0,1]", g.ResumeFrac)
	}
	if q := o.Quota; q != nil && (q.MapBytes < 0 || q.RPoolCap < 0) {
		return fmt.Errorf("runtime: negative quota")
	}
	return nil
}

// Defaults returns the Options a zero struct resolves to right now:
// the process-global tier and map core the legacy setters control.
// This is the compat-shim direction — old code that flips a global
// changes what empty Options fields mean.
func Defaults() Options {
	return Options{
		Tier:    vm.DefaultTier().String(),
		MapImpl: maps.CurrentImpl().String(),
	}
}

// Canon returns o with inheritable empty fields pinned to their
// current resolution, so the JSON form is self-contained: two Canon
// outputs are equal iff they construct identical instances.
func (o Options) Canon() Options {
	d := Defaults()
	if o.Tier == "" {
		o.Tier = d.Tier
	}
	if o.MapImpl == "" {
		o.MapImpl = d.MapImpl
	}
	if o.Shards == 0 {
		o.Shards = 1
	}
	return o
}

// JSON renders the canonical schema the daemon accepts.
func (o Options) JSON() ([]byte, error) {
	return json.MarshalIndent(o, "", "  ")
}

// FromJSON decodes Options strictly: unknown fields are an error, so a
// typo in a module-create request fails loudly instead of silently
// inheriting a default.
func FromJSON(data []byte) (Options, error) {
	var o Options
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&o); err != nil {
		return Options{}, fmt.Errorf("runtime: bad options JSON: %w", err)
	}
	if err := o.Validate(); err != nil {
		return Options{}, err
	}
	return o, nil
}

// Install makes o the process-wide default through the compat shims —
// the sanctioned "configure everything this process builds" entry the
// batch CLIs use in place of calling the global setters directly.
// Per-instance configuration should use Under instead.
func Install(o Options) error {
	tier, err := o.ResolveTier()
	if err != nil {
		return err
	}
	impl, err := o.ResolveMapImpl()
	if err != nil {
		return err
	}
	vm.SetDefaultTier(tier)
	maps.SetImpl(impl)
	if o.Stats {
		vm.SetGlobalStats(true)
	}
	if q := o.Quota; q != nil && q.RPoolCap > 0 {
		rpool.SetCapLimit(q.RPoolCap)
	}
	return nil
}

// buildMu serializes scoped builds: Under briefly retargets the
// construction-time shims (tier, map core, rpool cap, map-memory
// meter), and the lock keeps concurrent builders — the daemon creates
// modules from concurrent HTTP handlers — from observing each other's
// settings. Replay never takes this lock; it guards construction only.
var buildMu sync.Mutex

// Under runs build with o's construction-time settings in effect and
// the previous settings restored afterwards, enforcing the map-memory
// and rpool-capacity quotas against everything the build constructs.
// This is how per-instance configuration reaches constructors that
// read the package globals deep inside NF builders, without the
// configuration leaking to any other build.
func Under[T any](o Options, build func() (T, error)) (T, error) {
	var zero T
	tier, err := o.ResolveTier()
	if err != nil {
		return zero, err
	}
	impl, err := o.ResolveMapImpl()
	if err != nil {
		return zero, err
	}

	buildMu.Lock()
	defer buildMu.Unlock()
	prevTier, prevImpl, prevCap := vm.DefaultTier(), maps.CurrentImpl(), rpool.CapLimit()
	defer func() {
		vm.SetDefaultTier(prevTier)
		maps.SetImpl(prevImpl)
		rpool.SetCapLimit(prevCap)
		maps.SetAccount(nil)
	}()
	vm.SetDefaultTier(tier)
	maps.SetImpl(impl)

	var mapBytes int
	var rpoolCap int
	if q := o.Quota; q != nil {
		rpoolCap = q.RPoolCap
	}
	rpool.SetCapLimit(rpoolCap)
	maps.SetAccount(func(n int) { mapBytes += n })

	v, err := build()
	if err != nil {
		if errors.Is(err, rpool.ErrCapLimit) {
			return zero, fmt.Errorf("%w: %v", ErrQuota, err)
		}
		return zero, err
	}
	if q := o.Quota; q != nil && q.MapBytes > 0 && mapBytes > q.MapBytes {
		return zero, fmt.Errorf("%w: maps use %d arena bytes, quota %d", ErrQuota, mapBytes, q.MapBytes)
	}
	return v, nil
}
