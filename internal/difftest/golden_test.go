package difftest

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden execution traces")

func goldenPath(seed uint64) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("gen_%03d.txt", seed))
}

// TestGoldenTraces pins the reference interpreter's execution traces
// for the fixed corpus, and cross-checks the production VM against the
// reference on the same programs — so a regression in either machine
// diffs visibly against the committed trace.
func TestGoldenTraces(t *testing.T) {
	for _, seed := range GoldenCorpus() {
		seed := seed
		t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) {
			prog, err := GenProgram(seed)
			if err != nil {
				t.Fatal(err)
			}
			got := RecordTrace(prog, genCtx())
			path := goldenPath(seed)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden trace (run with -update to record): %v", err)
			}
			if got != string(want) {
				t.Fatalf("execution trace changed for seed %d; diff %s against a -update run", seed, path)
			}
			// The trace pins the reference; CrossCheck pins the real VM to
			// the reference, closing the loop.
			if err := CrossCheck(prog, genCtx()); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}
