package difftest

import (
	"testing"

	"enetstl/internal/nf"
	"enetstl/internal/nfcatalog"
)

// TestInterpEquivalence is the interpreter-tier conformance gate: every
// VM-backed NF×flavour built under the predecoded, wire, and jit tiers,
// replayed on bit-identical traces, exact agreement demanded throughout
// (see interp.go for why exactness is the right oracle even for the
// sampling sketches).
func TestInterpEquivalence(t *testing.T) {
	rep, err := RunInterpEquivalence(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.Failed() {
		t.Fatalf("interp divergences:\n%s", rep)
	}
	want := 0
	for _, name := range nfcatalog.Names() {
		for _, fl := range nfcatalog.SupportedFlavors(name) {
			if fl != nf.Kernel {
				want++
			}
		}
	}
	if rep.Cases != want {
		t.Fatalf("covered %d NF×flavour cases, want %d", rep.Cases, want)
	}
	if rep.Instances != 3*want {
		t.Fatalf("replayed %d instances, want %d (each case under all three tiers)", rep.Instances, 3*want)
	}
	if rep.Probes == 0 {
		t.Fatal("no estimator probes ran — estimator exactness wiring is dead")
	}
}

// TestInterpEquivalenceSeeds re-runs the tier differential under an
// alternate seed and skew so agreement is not an artifact of one
// stream's collision pattern.
func TestInterpEquivalenceSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed replay is slow")
	}
	rep, err := RunInterpEquivalence(Config{Seed: 7, ZipfS: 1.3, Packets: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("seed 7: interp divergences:\n%s", rep)
	}
}
