// Hash-core implementation differential: every NF×flavour replayed
// over the flat reference core and the bucketed production core on
// bit-identical traces. Unlike the flavour axis, there is no estimate
// oracle and no metamorphic fallback here — the two cores implement the
// same map contract, every RNG stream within one flavour is identical,
// and the LRU layer's eviction order is core-agnostic, so the oracle is
// exactness across the board: verdict-for-verdict, error parity, and
// estimator-state equality for every flow key.

package difftest

import (
	"fmt"

	"enetstl/internal/harness"
	"enetstl/internal/nfcatalog"
)

// RunImplEquivalence builds every registered NF×flavour under both hash
// cores and differentially replays them.
func RunImplEquivalence(cfg Config) (*Report, error) {
	cases, err := nfcatalog.ImplDiffCases(nfcatalog.DiffConfig{
		Packets: cfg.Packets, Flows: cfg.Flows, Seed: cfg.Seed, ZipfS: cfg.ZipfS})
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	for _, c := range cases {
		runImplCase(rep, c)
	}
	return rep, nil
}

// runImplCase replays one NF×flavour's per-core builds and demands
// exact agreement.
func runImplCase(rep *Report, c nfcatalog.ImplDiffCase) {
	rep.Cases++
	rep.Instances += len(c.Insts)
	caseName := func(i int) string {
		return fmt.Sprintf("%s@%v", c.Name, c.Impls[i])
	}

	for i := 1; i < len(c.Traces); i++ {
		if !tracesEqual(c.Traces[0], c.Traces[i]) {
			rep.diverge(Divergence{Case: caseName(i), Kind: "trace", Packet: -1,
				Detail: "per-core trace clones diverged before replay"})
			return
		}
	}

	verdicts := make([][]uint64, len(c.Insts))
	errs := make([]error, len(c.Insts))
	for i, inst := range c.Insts {
		verdicts[i], errs[i] = harness.Verdicts(inst, c.Traces[i])
		rep.Packets += len(verdicts[i])
	}

	for i := 1; i < len(c.Insts); i++ {
		if (errs[0] == nil) != (errs[i] == nil) {
			rep.diverge(Divergence{Case: caseName(i), Kind: "error", Packet: len(verdicts[i]),
				Detail: fmt.Sprintf("error parity: %v=%v, %v=%v",
					c.Impls[0], errs[0], c.Impls[i], errs[i])})
		}
	}

	for i := 1; i < len(c.Insts); i++ {
		n := min(len(verdicts[0]), len(verdicts[i]))
		for p := 0; p < n; p++ {
			if verdicts[0][p] != verdicts[i][p] {
				rep.diverge(Divergence{Case: caseName(i), Kind: "verdict", Packet: p,
					Detail: fmt.Sprintf("%v=%d %v=%d", c.Impls[0], verdicts[0][p],
						c.Impls[i], verdicts[i][p])})
				break
			}
		}
	}

	// Estimator-state exactness for every flow key — strict even for
	// the sampling sketches (same flavour, same RNG draws, so the cores
	// must land on identical sketch state).
	if c.Estimates[0] != nil {
		for f, key := range c.Traces[0].FlowKeys {
			base := c.Estimates[0](key[:])
			for i := 1; i < len(c.Insts); i++ {
				rep.Probes++
				if got := c.Estimates[i](key[:]); got != base {
					rep.diverge(Divergence{Case: caseName(i), Kind: "estimate", Packet: -1,
						Detail: fmt.Sprintf("flow %d: %v=%d %v=%d", f,
							c.Impls[0], base, c.Impls[i], got)})
					return
				}
			}
		}
	}
}
