// Seeded generator of verifier-valid programs, and the cross-check
// driver that runs each generated program on both interpreters and
// compares the complete final machine state.
//
// The generator builds programs from templates that are valid by
// construction (registers initialized before use, stack slots written
// before read, map-lookup results null-checked, all branches forward),
// so nearly everything it emits passes the verifier and the
// differential corpus exercises deep executions rather than rejects.

package difftest

import (
	"bytes"
	"fmt"

	"enetstl/internal/ebpf/asm"
	"enetstl/internal/ebpf/isa"
	"enetstl/internal/ebpf/maps"
	"enetstl/internal/ebpf/verifier"
	"enetstl/internal/ebpf/vm"
)

// Map shape shared by both machines in every differential run.
const (
	GenMapValueSize = 8
	GenMapEntries   = 16
)

// genRNG is a splitmix64 stream — deterministic and dependency-free.
type genRNG struct{ s uint64 }

func (g *genRNG) next() uint64 {
	g.s += 0x9e3779b97f4a7c15
	z := g.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (g *genRNG) intn(n int) int { return int(g.next() % uint64(n)) }

// GenProgram emits a seeded, verifier-valid program using the ALU,
// branch, stack, context, helper-call, and array-map surfaces. Same
// seed, same program.
func GenProgram(seed uint64) ([]isa.Instruction, error) {
	rng := &genRNG{s: seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
	b := asm.New()
	const fd = 0 // single array map, registered first on both machines

	// R6 pins the context pointer across helper calls (callee-saved);
	// R0, R7-R9 form the scalar working pool.
	pool := []isa.Reg{asm.R0, asm.R7, asm.R8, asm.R9}
	b.Mov(asm.R6, asm.R1)
	for _, r := range pool {
		b.MovImm(r, int32(uint32(rng.next())))
	}
	// Scratch stack slots -8..-64, each written before any read.
	var slotInit [8]bool
	labels := 0
	label := func(prefix string) string {
		labels++
		return fmt.Sprintf("%s_%d", prefix, labels)
	}
	pick := func() isa.Reg { return pool[rng.intn(len(pool))] }

	aluImm := []func(isa.Reg, int32) *asm.Builder{
		b.AddImm, b.SubImm, b.MulImm, b.AndImm, b.OrImm, b.XorImm,
		b.DivImm, b.ModImm, b.MovImm,
	}
	aluReg := []func(isa.Reg, isa.Reg) *asm.Builder{
		b.Add, b.Sub, b.Mul, b.And, b.Or, b.Xor, b.Lsh, b.Rsh, b.Arsh,
		b.Div, b.Mod, b.Mov,
	}
	conds := []asm.Cond{asm.JEQ, asm.JNE, asm.JGT, asm.JGE, asm.JLT,
		asm.JLE, asm.JSGT, asm.JSGE, asm.JSLT, asm.JSLE, asm.JSET}

	n := 8 + rng.intn(24)
	for i := 0; i < n; i++ {
		switch rng.intn(10) {
		case 0, 1:
			aluImm[rng.intn(len(aluImm))](pick(), int32(uint32(rng.next())))
		case 2, 3:
			aluReg[rng.intn(len(aluReg))](pick(), pick())
		case 4:
			// ALU32 forms: exercises zero-extension semantics.
			if rng.intn(2) == 0 {
				b.Mov32Imm(pick(), int32(uint32(rng.next())))
			} else {
				b.Add32(pick(), pick())
			}
		case 5:
			s := rng.intn(8)
			b.Store(asm.R10, int16(-8*(s+1)), pick(), 8)
			slotInit[s] = true
		case 6:
			s := rng.intn(8)
			if !slotInit[s] {
				b.Store(asm.R10, int16(-8*(s+1)), pick(), 8)
				slotInit[s] = true
			}
			b.Load(pick(), asm.R10, int16(-8*(s+1)), 8)
		case 7:
			// Context read at a size-aligned offset.
			size := []int{1, 2, 4, 8}[rng.intn(4)]
			off := size * rng.intn(64/size)
			b.Load(pick(), asm.R6, int16(off), size)
		case 8:
			// Forward branch over a short filler block.
			l := label("j")
			if rng.intn(2) == 0 {
				b.JmpImm(conds[rng.intn(len(conds))], pick(), int32(uint32(rng.next())), l)
			} else {
				b.Jmp(conds[rng.intn(len(conds))], pick(), pick(), l)
			}
			for k := rng.intn(3) + 1; k > 0; k-- {
				aluImm[rng.intn(len(aluImm))](pick(), int32(uint32(rng.next())))
			}
			b.Label(l)
		case 9:
			switch rng.intn(4) {
			case 0:
				b.Call(vm.HelperKtimeGetNS)
			case 1:
				b.Call(vm.HelperGetPrandomU32)
			case 2:
				// Null-checked lookup; the out-of-range third of the key
				// space exercises the miss path. Both arms leave R0 at the
				// same scalar so the join state is identical.
				idx := rng.intn(GenMapEntries + GenMapEntries/2)
				b.StoreImm(asm.R10, -128, int32(idx), 4)
				b.LoadMap(asm.R1, fd)
				b.Mov(asm.R2, asm.R10)
				b.AddImm(asm.R2, -128)
				b.Call(vm.HelperMapLookup)
				miss, done := label("miss"), label("done")
				norm := int32(uint32(rng.next()))
				b.JmpImm(asm.JEQ, asm.R0, 0, miss)
				dst := pool[1+rng.intn(len(pool)-1)] // not R0: it holds the pointer
				switch rng.intn(3) {
				case 0:
					b.Load(dst, asm.R0, 0, 8)
				case 1:
					b.Store(asm.R0, 0, dst, 8)
				case 2:
					b.Load(dst, asm.R0, 0, 8)
					b.AddImm(dst, 1)
					b.Store(asm.R0, 0, dst, 8)
				}
				b.MovImm(asm.R0, norm)
				b.Ja(done)
				b.Label(miss)
				b.MovImm(asm.R0, norm)
				b.Label(done)
			case 3:
				idx := rng.intn(GenMapEntries + GenMapEntries/2)
				b.StoreImm(asm.R10, -128, int32(idx), 4)
				b.Store(asm.R10, -136, pick(), 8)
				b.LoadMap(asm.R1, fd)
				b.Mov(asm.R2, asm.R10)
				b.AddImm(asm.R2, -128)
				b.Mov(asm.R3, asm.R10)
				b.AddImm(asm.R3, -136)
				b.MovImm(asm.R4, 0) // flags: must be a known scalar
				b.Call(vm.HelperMapUpdate)
			}
		}
	}
	b.Mov(asm.R0, pool[1+rng.intn(len(pool)-1)])
	b.Exit()
	return b.Program()
}

// vmRun executes prog on a fresh production VM under the given
// execution tier and captures the complete observable state: error,
// final registers, stack, mutated context, map arena, and the retired
// instruction count.
func vmRun(prog []isa.Instruction, ctx []byte, tier vm.Tier) (sink [isa.NumRegs]uint64, stack, runCtx, mapData []byte, insns uint64, runErr error, loadErr error) {
	machine := vm.New()
	machine.SetTier(tier)
	arr := maps.Must(maps.NewArray(GenMapValueSize, GenMapEntries))
	machine.RegisterMap(arr)
	loaded, err := machine.Load("difftest", prog)
	if err != nil {
		return sink, nil, nil, nil, 0, nil, err
	}
	machine.RegSink = &sink
	runCtx = append([]byte(nil), ctx...)
	_, runErr = machine.Run(loaded, runCtx)
	return sink, machine.Stack(), runCtx, arr.Data(), machine.InsnCount, runErr, nil
}

// CrossCheck verifies prog, then runs it four ways — the predecoded
// fast-path interpreter, the block-compiled JIT tier, the wire-format
// reference loop, and the independent reference interpreter — over the
// same context bytes and compares the complete final state pairwise:
// error nil-ness, all eleven registers (pointer encodings are
// deterministic, so raw equality is exact), the stack, the context, the
// map arena, and the retired instruction count. The fast, jit, and wire
// paths must agree bit-for-bit even on failure, down to the error text;
// RefVM agreement is on nil-ness plus success-state equality. A nil
// return means all machines agree; verifier rejection is reported as
// ErrRejected for the caller to count.
func CrossCheck(prog []isa.Instruction, ctx []byte) error {
	chk := vm.New()
	chk.RegisterMap(maps.Must(maps.NewArray(GenMapValueSize, GenMapEntries)))
	if err := verifier.Verify(chk, prog, verifier.Options{CtxSize: len(ctx)}); err != nil {
		return err
	}

	fastRegs, fastStack, fastCtx, fastMap, fastInsns, fastErr, loadErr := vmRun(prog, ctx, vm.TierPredecoded)
	if loadErr != nil {
		return fmt.Errorf("load: %w", loadErr)
	}
	wireRegs, wireStack, wireCtx, wireMap, wireInsns, wireErr, loadErr := vmRun(prog, ctx, vm.TierWire)
	if loadErr != nil {
		return fmt.Errorf("load (wire): %w", loadErr)
	}
	jitRegs, jitStack, jitCtx, jitMap, jitInsns, jitErr, loadErr := vmRun(prog, ctx, vm.TierJIT)
	if loadErr != nil {
		return fmt.Errorf("load (jit): %w", loadErr)
	}

	// Predecoded vs wire-format: the fast path is a pure reimplementation
	// of the same machine, so even the error text must match.
	switch {
	case (fastErr == nil) != (wireErr == nil):
		return fmt.Errorf("error divergence: fast=%v wire=%v", fastErr, wireErr)
	case fastErr != nil && fastErr.Error() != wireErr.Error():
		return fmt.Errorf("error text divergence:\n  fast: %v\n  wire: %v", fastErr, wireErr)
	case fastRegs != wireRegs:
		return fmt.Errorf("register divergence:\n  fast: %x\n  wire: %x", fastRegs, wireRegs)
	case !bytes.Equal(fastStack, wireStack):
		return fmt.Errorf("stack divergence (fast vs wire)")
	case !bytes.Equal(fastCtx, wireCtx):
		return fmt.Errorf("context divergence (fast vs wire)")
	case !bytes.Equal(fastMap, wireMap):
		return fmt.Errorf("map state divergence (fast vs wire)")
	case fastInsns != wireInsns:
		return fmt.Errorf("insn count divergence: fast=%d wire=%d", fastInsns, wireInsns)
	}

	// JIT vs wire-format: held to the same bit-for-bit standard, budget
	// accounting included.
	switch {
	case (jitErr == nil) != (wireErr == nil):
		return fmt.Errorf("error divergence: jit=%v wire=%v", jitErr, wireErr)
	case jitErr != nil && jitErr.Error() != wireErr.Error():
		return fmt.Errorf("error text divergence:\n  jit : %v\n  wire: %v", jitErr, wireErr)
	case jitRegs != wireRegs:
		return fmt.Errorf("register divergence:\n  jit : %x\n  wire: %x", jitRegs, wireRegs)
	case !bytes.Equal(jitStack, wireStack):
		return fmt.Errorf("stack divergence (jit vs wire)")
	case !bytes.Equal(jitCtx, wireCtx):
		return fmt.Errorf("context divergence (jit vs wire)")
	case !bytes.Equal(jitMap, wireMap):
		return fmt.Errorf("map state divergence (jit vs wire)")
	case jitInsns != wireInsns:
		return fmt.Errorf("insn count divergence: jit=%d wire=%d", jitInsns, wireInsns)
	}

	ref := NewRef()
	ref.AddArray(GenMapValueSize, GenMapEntries)
	refCtx := append([]byte(nil), ctx...)
	refRegs, refErr := ref.Run(prog, refCtx)

	if (fastErr == nil) != (refErr == nil) {
		return fmt.Errorf("error divergence: vm=%v ref=%v", fastErr, refErr)
	}
	if fastErr != nil {
		return nil // all three faulted; error taxonomy is not part of the spec
	}
	if fastRegs != refRegs {
		return fmt.Errorf("register divergence:\n  vm : %x\n  ref: %x", fastRegs, refRegs)
	}
	if !bytes.Equal(fastStack, ref.Stack[:]) {
		return fmt.Errorf("stack divergence")
	}
	if !bytes.Equal(fastCtx, refCtx) {
		return fmt.Errorf("context divergence")
	}
	if !bytes.Equal(fastMap, ref.Maps[0].Data) {
		return fmt.Errorf("map state divergence")
	}
	return nil
}
