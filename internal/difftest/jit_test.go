package difftest

import (
	"bytes"
	"errors"
	"testing"

	"enetstl/internal/ebpf/isa"
	"enetstl/internal/ebpf/maps"
	"enetstl/internal/ebpf/vm"
)

// jitCtx is the fixed context every jit property test replays — same
// shape the difftest sweep uses.
func jitCtx() []byte {
	ctx := make([]byte, 64)
	for i := range ctx {
		ctx[i] = byte(i*7 + 1)
	}
	return ctx
}

// TestJITLeadersCoverBranchTargets is the block-splitting soundness
// property: every jump target the wire stream can name must begin a
// compiled block, otherwise a taken branch would land mid-closure. The
// compiler may create extra leaders (fall-throughs, call returns) —
// the property is superset, not equality.
func TestJITLeadersCoverBranchTargets(t *testing.T) {
	compiled := 0
	for seed := uint64(0); seed < 300; seed++ {
		prog, err := GenProgram(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		machine := vm.New()
		machine.RegisterMap(maps.Must(maps.NewArray(GenMapValueSize, GenMapEntries)))
		loaded, err := machine.Load("jitprop", prog)
		if err != nil {
			continue // verifier rejection: nothing to compile
		}
		if !machine.CompileJIT(loaded) {
			t.Fatalf("seed %d: program did not compile", seed)
		}
		compiled++
		starts := make(map[int]bool)
		for _, pc := range loaded.JITBlockStarts() {
			starts[pc] = true
		}
		if !starts[0] {
			t.Fatalf("seed %d: entry pc 0 is not a block leader", seed)
		}
		for pc, isTarget := range isa.BranchTargets(prog) {
			if isTarget && !starts[pc] {
				t.Fatalf("seed %d: jump target %d is not a block leader (leaders %v)",
					seed, pc, loaded.JITBlockStarts())
			}
		}
	}
	if compiled == 0 {
		t.Fatal("no generated program compiled — the property never ran")
	}
}

// TestJITStateParity is the dedicated jit-vs-predecoded conformance
// sweep: same generated corpus the CrossCheck driver uses, but compared
// head-to-head so a divergence names the jit tier directly. Full final
// state — registers, stack, context, map arena, retired instruction
// count, and error text — must match bit-for-bit.
func TestJITStateParity(t *testing.T) {
	ctx := jitCtx()
	executed := 0
	for seed := uint64(0); seed < 300; seed++ {
		prog, err := GenProgram(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fastRegs, fastStack, fastCtx, fastMap, fastInsns, fastErr, loadErr := vmRun(prog, ctx, vm.TierPredecoded)
		if loadErr != nil {
			continue
		}
		jitRegs, jitStack, jitCtx, jitMap, jitInsns, jitErr, loadErr := vmRun(prog, ctx, vm.TierJIT)
		if loadErr != nil {
			t.Fatalf("seed %d: jit load failed after predecoded load succeeded: %v", seed, loadErr)
		}
		executed++
		switch {
		case (jitErr == nil) != (fastErr == nil):
			t.Fatalf("seed %d: error divergence: jit=%v fast=%v", seed, jitErr, fastErr)
		case jitErr != nil && jitErr.Error() != fastErr.Error():
			t.Fatalf("seed %d: error text divergence:\n  jit : %v\n  fast: %v", seed, jitErr, fastErr)
		case jitRegs != fastRegs:
			t.Fatalf("seed %d: register divergence:\n  jit : %x\n  fast: %x", seed, jitRegs, fastRegs)
		case !bytes.Equal(jitStack, fastStack):
			t.Fatalf("seed %d: stack divergence", seed)
		case !bytes.Equal(jitCtx, fastCtx):
			t.Fatalf("seed %d: context divergence", seed)
		case !bytes.Equal(jitMap, fastMap):
			t.Fatalf("seed %d: map state divergence", seed)
		case jitInsns != fastInsns:
			t.Fatalf("seed %d: insn count divergence: jit=%d fast=%d", seed, jitInsns, fastInsns)
		}
	}
	if executed == 0 {
		t.Fatal("no generated program executed — the parity sweep never ran")
	}
}

// runWithBudget is vmRun with an explicit instruction budget, for the
// exhaustion-parity sweep.
func runWithBudget(prog []isa.Instruction, ctx []byte, tier vm.Tier, budget int) (sink [isa.NumRegs]uint64, stack, runCtx, mapData []byte, insns uint64, runErr error, loadErr error) {
	machine := vm.New()
	machine.SetTier(tier)
	machine.Budget = budget
	arr := maps.Must(maps.NewArray(GenMapValueSize, GenMapEntries))
	machine.RegisterMap(arr)
	loaded, err := machine.Load("difftest", prog)
	if err != nil {
		return sink, nil, nil, nil, 0, nil, err
	}
	machine.RegSink = &sink
	runCtx = append([]byte(nil), ctx...)
	_, runErr = machine.Run(loaded, runCtx)
	return sink, machine.Stack(), runCtx, arr.Data(), machine.InsnCount, runErr, nil
}

// TestJITBudgetSweepParity pins the hardest parity property: the jit
// pre-charges whole blocks and refunds on fault, so every budget from 0
// to just past the program's full retirement count must land on exactly
// the wire interpreter's state — same ErrBudget cut at the same
// instruction, same partial side effects, same retired count.
func TestJITBudgetSweepParity(t *testing.T) {
	ctx := jitCtx()
	swept := 0
	for seed := uint64(0); seed < 24; seed++ {
		prog, err := GenProgram(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Full retirement count under an ample budget sizes the sweep.
		_, _, _, _, full, _, loadErr := vmRun(prog, ctx, vm.TierWire)
		if loadErr != nil {
			continue
		}
		swept++
		for budget := 0; budget <= int(full)+4; budget++ {
			wireRegs, wireStack, wireCtx, wireMap, wireInsns, wireErr, _ := runWithBudget(prog, ctx, vm.TierWire, budget)
			jitRegs, jitStack, jitCtx, jitMap, jitInsns, jitErr, _ := runWithBudget(prog, ctx, vm.TierJIT, budget)
			switch {
			case (jitErr == nil) != (wireErr == nil):
				t.Fatalf("seed %d budget %d: error divergence: jit=%v wire=%v", seed, budget, jitErr, wireErr)
			case jitErr != nil && jitErr.Error() != wireErr.Error():
				t.Fatalf("seed %d budget %d: error text divergence:\n  jit : %v\n  wire: %v", seed, budget, jitErr, wireErr)
			case jitRegs != wireRegs:
				t.Fatalf("seed %d budget %d: register divergence:\n  jit : %x\n  wire: %x", seed, budget, jitRegs, wireRegs)
			case !bytes.Equal(jitStack, wireStack):
				t.Fatalf("seed %d budget %d: stack divergence", seed, budget)
			case !bytes.Equal(jitCtx, wireCtx):
				t.Fatalf("seed %d budget %d: context divergence", seed, budget)
			case !bytes.Equal(jitMap, wireMap):
				t.Fatalf("seed %d budget %d: map state divergence", seed, budget)
			case jitInsns != wireInsns:
				t.Fatalf("seed %d budget %d: insn count divergence: jit=%d wire=%d", seed, budget, jitInsns, wireInsns)
			}
			if budget < int(full) && !errors.Is(jitErr, vm.ErrBudget) {
				t.Fatalf("seed %d budget %d: want ErrBudget below full retirement (%d), got %v",
					seed, budget, full, jitErr)
			}
		}
	}
	if swept == 0 {
		t.Fatal("no generated program swept — the budget parity sweep never ran")
	}
}
