// Interpreter-tier differential: every VM-backed NF×flavour replayed
// under all three execution tiers (predecoded, wire, jit) on
// bit-identical traces. Like the map-core axis there is no estimate
// oracle and no metamorphic fallback — the tiers execute the same
// program over the same helper tables and RNG streams, so the oracle is
// exactness across the board: verdict-for-verdict, error parity, and
// estimator-state equality for every flow key. A jit block compiler
// that drops an instruction, mis-orders a fused pair, or mischarges the
// budget shows up here as a hard divergence.

package difftest

import (
	"fmt"

	"enetstl/internal/harness"
	"enetstl/internal/nfcatalog"
)

// RunInterpEquivalence builds every VM-backed NF×flavour under all
// three interpreter tiers and differentially replays them.
func RunInterpEquivalence(cfg Config) (*Report, error) {
	cases, err := nfcatalog.InterpDiffCases(nfcatalog.DiffConfig{
		Packets: cfg.Packets, Flows: cfg.Flows, Seed: cfg.Seed, ZipfS: cfg.ZipfS})
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	for _, c := range cases {
		runInterpCase(rep, c)
	}
	return rep, nil
}

// runInterpCase replays one NF×flavour's per-tier builds and demands
// exact agreement.
func runInterpCase(rep *Report, c nfcatalog.InterpDiffCase) {
	rep.Cases++
	rep.Instances += len(c.Insts)
	caseName := func(i int) string {
		return fmt.Sprintf("%s@%v", c.Name, c.Tiers[i])
	}

	for i := 1; i < len(c.Traces); i++ {
		if !tracesEqual(c.Traces[0], c.Traces[i]) {
			rep.diverge(Divergence{Case: caseName(i), Kind: "trace", Packet: -1,
				Detail: "per-tier trace clones diverged before replay"})
			return
		}
	}

	verdicts := make([][]uint64, len(c.Insts))
	errs := make([]error, len(c.Insts))
	for i, inst := range c.Insts {
		verdicts[i], errs[i] = harness.Verdicts(inst, c.Traces[i])
		rep.Packets += len(verdicts[i])
	}

	for i := 1; i < len(c.Insts); i++ {
		if (errs[0] == nil) != (errs[i] == nil) {
			rep.diverge(Divergence{Case: caseName(i), Kind: "error", Packet: len(verdicts[i]),
				Detail: fmt.Sprintf("error parity: %v=%v, %v=%v",
					c.Tiers[0], errs[0], c.Tiers[i], errs[i])})
		}
	}

	for i := 1; i < len(c.Insts); i++ {
		n := min(len(verdicts[0]), len(verdicts[i]))
		for p := 0; p < n; p++ {
			if verdicts[0][p] != verdicts[i][p] {
				rep.diverge(Divergence{Case: caseName(i), Kind: "verdict", Packet: p,
					Detail: fmt.Sprintf("%v=%d %v=%d", c.Tiers[0], verdicts[0][p],
						c.Tiers[i], verdicts[i][p])})
				break
			}
		}
	}

	// Estimator-state exactness for every flow key — strict even for
	// the sampling sketches (same build, same RNG draws, so the tiers
	// must land on identical sketch state).
	if c.Estimates[0] != nil {
		for f, key := range c.Traces[0].FlowKeys {
			base := c.Estimates[0](key[:])
			for i := 1; i < len(c.Insts); i++ {
				rep.Probes++
				if got := c.Estimates[i](key[:]); got != base {
					rep.diverge(Divergence{Case: caseName(i), Kind: "estimate", Packet: -1,
						Detail: fmt.Sprintf("flow %d: %v=%d %v=%d", f,
							c.Tiers[0], base, c.Tiers[i], got)})
					return
				}
			}
		}
	}
}
