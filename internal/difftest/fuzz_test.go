package difftest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"enetstl/internal/ebpf/isa"
	"enetstl/internal/ebpf/verifier"
)

// fuzzProgCap bounds how many instructions one fuzz input decodes to,
// so a single differential run stays cheap and the fuzzer explores
// inputs instead of grinding through one giant program.
const fuzzProgCap = 512

// decodeFuzzProg interprets data in the classic eBPF wire layout:
// 8 bytes per instruction — opcode, dst|src register nibbles,
// little-endian 16-bit offset, little-endian 32-bit immediate.
// Trailing bytes that do not fill an instruction are ignored.
func decodeFuzzProg(data []byte) []isa.Instruction {
	n := len(data) / 8
	if n > fuzzProgCap {
		n = fuzzProgCap
	}
	prog := make([]isa.Instruction, 0, n)
	for i := 0; i < n; i++ {
		b := data[i*8 : i*8+8]
		prog = append(prog, isa.Instruction{
			Op:  b[0],
			Dst: isa.Reg(b[1] & 0x0f),
			Src: isa.Reg(b[1] >> 4),
			Off: int16(binary.LittleEndian.Uint16(b[2:4])),
			Imm: int32(binary.LittleEndian.Uint32(b[4:8])),
		})
	}
	return prog
}

// encodeFuzzProg is the inverse of decodeFuzzProg, used to seed the
// corpus from generated programs.
func encodeFuzzProg(prog []isa.Instruction) []byte {
	out := make([]byte, 0, len(prog)*8)
	for _, ins := range prog {
		var b [8]byte
		b[0] = ins.Op
		b[1] = uint8(ins.Dst)&0x0f | uint8(ins.Src)<<4
		binary.LittleEndian.PutUint16(b[2:4], uint16(ins.Off))
		binary.LittleEndian.PutUint32(b[4:8], uint32(ins.Imm))
		out = append(out, b[:]...)
	}
	return out
}

// FuzzJITCrossCheck feeds arbitrary bytecode through the full
// differential driver: any program the verifier accepts is executed on
// all three production tiers (predecoded, wire, jit) and the reference
// interpreter, and the complete final state — registers, stack,
// context, map arena, retired instruction count, error text — must
// agree. The jit tier's block compiler is the newest and most intricate
// of the four, so in practice this is the jit-vs-reference oracle; the
// committed corpus under testdata/fuzz seeds it with generated
// verifier-valid programs so coverage starts deep in the accept space.
func FuzzJITCrossCheck(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		prog, err := GenProgram(seed)
		if err != nil {
			f.Fatalf("seed %d: %v", seed, err)
		}
		f.Add(encodeFuzzProg(prog))
	}
	ctx := jitCtx()
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := decodeFuzzProg(data)
		switch err := CrossCheck(prog, append([]byte(nil), ctx...)); {
		case err == nil:
		case errors.Is(err, verifier.ErrRejected):
		default:
			t.Fatalf("divergence: %v\n%s", err, isa.Disassemble(prog))
		}
	})
}

// TestRegenJITFuzzCorpus rewrites the committed seed corpus from the
// program generator. Run with ENETSTL_REGEN_FUZZ_CORPUS=1 after
// changing the generator or the wire encoding; otherwise it only
// asserts the committed corpus exists and decodes.
func TestRegenJITFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzJITCrossCheck")
	if os.Getenv("ENETSTL_REGEN_FUZZ_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for seed := uint64(0); seed < 8; seed++ {
			prog, err := GenProgram(seed)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", encodeFuzzProg(prog))
			name := filepath.Join(dir, fmt.Sprintf("gen-seed-%d", seed))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("committed fuzz corpus missing (run with ENETSTL_REGEN_FUZZ_CORPUS=1 to rebuild): %v", err)
	}
	if len(ents) == 0 {
		t.Fatal("committed fuzz corpus is empty")
	}
}
