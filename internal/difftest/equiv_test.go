package difftest

import (
	"testing"

	"enetstl/internal/nfcatalog"
)

// TestFlavourEquivalence is the standing conformance gate: every
// registered NF, in every flavour pair, over seeded identical traces.
func TestFlavourEquivalence(t *testing.T) {
	rep, err := RunEquivalence(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.Failed() {
		t.Fatalf("flavour divergences:\n%s", rep)
	}
	if rep.Cases != len(nfcatalog.Names()) {
		t.Fatalf("covered %d cases, want %d (every registered NF)", rep.Cases, len(nfcatalog.Names()))
	}
	// 15 NFs × 3 flavours, minus skiplist/eBPF and conntrack/eNetSTL.
	want := 0
	for _, name := range nfcatalog.Names() {
		want += len(nfcatalog.SupportedFlavors(name))
	}
	if rep.Instances != want {
		t.Fatalf("replayed %d instances, want %d", rep.Instances, want)
	}
	if rep.Probes == 0 {
		t.Fatal("no estimator/metamorphic probes ran — oracle wiring is dead")
	}
}

// TestFlavourEquivalenceSeeds replays the equivalence suite under a few
// alternate trace seeds and skews, so the contract is not an artifact
// of one stream.
func TestFlavourEquivalenceSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed replay is slow")
	}
	for _, cfg := range []Config{
		{Seed: 7, ZipfS: 1.3},
		{Seed: 99, ZipfS: -1, Packets: 2000}, // uniform (ZipfS<0 normalizes to 0? keep explicit)
	} {
		if cfg.ZipfS < 0 {
			cfg.ZipfS = 0.000001 // effectively uniform-ish low skew
		}
		rep, err := RunEquivalence(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d: divergences:\n%s", cfg.Seed, rep)
		}
	}
}
