package difftest

import (
	"testing"

	"enetstl/internal/nfcatalog"
)

// TestImplEquivalence is the old-vs-new map-core conformance gate:
// every registered NF×flavour built over the flat reference core and
// the bucketed core, replayed on bit-identical traces, exact agreement
// demanded throughout (see impl.go for why exactness is the right
// oracle even for the sampling sketches).
func TestImplEquivalence(t *testing.T) {
	rep, err := RunImplEquivalence(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if rep.Failed() {
		t.Fatalf("impl divergences:\n%s", rep)
	}
	want := 0
	for _, name := range nfcatalog.Names() {
		want += len(nfcatalog.SupportedFlavors(name))
	}
	if rep.Cases != want {
		t.Fatalf("covered %d NF×flavour cases, want %d", rep.Cases, want)
	}
	if rep.Instances != 2*want {
		t.Fatalf("replayed %d instances, want %d (each case under both cores)", rep.Instances, 2*want)
	}
	if rep.Probes == 0 {
		t.Fatal("no estimator probes ran — estimator exactness wiring is dead")
	}
}

// TestImplEquivalenceSeeds re-runs the core differential under an
// alternate seed and skew so agreement is not an artifact of one
// stream's collision pattern.
func TestImplEquivalenceSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed replay is slow")
	}
	rep, err := RunImplEquivalence(Config{Seed: 7, ZipfS: 1.3, Packets: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("seed 7: impl divergences:\n%s", rep)
	}
}
