// Golden execution traces: a fixed generated corpus is executed on the
// reference interpreter with full per-step register recording, and the
// rendered traces are pinned under testdata/golden/. An interpreter
// regression — in either machine — shows up as a readable trace diff
// rather than a bare verdict mismatch.

package difftest

import (
	"fmt"
	"strings"

	"enetstl/internal/ebpf/isa"
)

// GoldenCorpus returns the generator seeds whose traces are pinned.
// Append seeds to grow the corpus; never renumber existing ones, their
// files are named by seed.
func GoldenCorpus() []uint64 { return []uint64{1, 2, 3, 5, 8, 13, 21, 34} }

// fnv64 is the checksum used to pin bulk state (stack, map arena) in
// golden files without storing hundreds of zero bytes.
func fnv64(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// RecordTrace executes prog on a fresh reference machine over ctx and
// renders the disassembly, the per-step register trace, and the final
// machine state.
func RecordTrace(prog []isa.Instruction, ctx []byte) string {
	var sb strings.Builder
	sb.WriteString("# program\n")
	sb.WriteString(isa.Disassemble(prog))
	sb.WriteString("# execution\n")

	ref := NewRef()
	ref.AddArray(GenMapValueSize, GenMapEntries)
	ref.TraceFn = func(step, pc int, ins isa.Instruction, regs *[isa.NumRegs]uint64) {
		fmt.Fprintf(&sb, "%4d pc=%-3d %-34s |", step, pc, ins.String())
		for i, v := range regs {
			fmt.Fprintf(&sb, " r%d=%x", i, v)
		}
		sb.WriteByte('\n')
	}
	ctxCopy := append([]byte(nil), ctx...)
	regs, err := ref.Run(prog, ctxCopy)

	sb.WriteString("# final\n")
	fmt.Fprintf(&sb, "err=%v\n", err)
	fmt.Fprintf(&sb, "verdict=%d\n", regs[0])
	fmt.Fprintf(&sb, "stack=fnv:%016x\n", fnv64(ref.Stack[:]))
	fmt.Fprintf(&sb, "ctx=fnv:%016x\n", fnv64(ctxCopy))
	fmt.Fprintf(&sb, "map=fnv:%016x\n", fnv64(ref.Maps[0].Data))
	return sb.String()
}
