package difftest

import (
	"errors"
	"testing"

	"enetstl/internal/ebpf/isa"
	"enetstl/internal/ebpf/verifier"
)

// genCtx builds the deterministic 64-byte context every differential
// run shares.
func genCtx() []byte {
	ctx := make([]byte, 64)
	for i := range ctx {
		ctx[i] = byte(i*7 + 1)
	}
	return ctx
}

// TestVMDifferential cross-checks the production interpreter against
// the reference interpreter on a seeded corpus of generated
// verifier-valid programs: final registers, stack, context, map state,
// and verdict must all agree.
func TestVMDifferential(t *testing.T) {
	trials := 500
	if testing.Short() {
		trials = 50
	}
	executed, rejected := 0, 0
	for seed := uint64(0); seed < uint64(trials); seed++ {
		prog, err := GenProgram(seed)
		if err != nil {
			t.Fatalf("seed %d: generator emitted an unassemblable program: %v", seed, err)
		}
		err = CrossCheck(prog, genCtx())
		if errors.Is(err, verifier.ErrRejected) {
			rejected++
			continue
		}
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, isa.Disassemble(prog))
		}
		executed++
	}
	t.Logf("vm differential: %d executed, %d rejected", executed, rejected)
	if executed < trials*3/4 {
		t.Fatalf("only %d/%d generated programs executed — generator validity regressed", executed, trials)
	}
}
