// Package difftest is the differential conformance subsystem: it proves
// that every network function's flavours compute the same function.
//
// Three pillars:
//
//   - Flavour equivalence (this file): every nfcatalog entry with more
//     than one flavour replays identical seeded packet streams through
//     each and is checked verdict-for-verdict, then probed through its
//     control-plane estimator. Hash-deterministic structures must agree
//     exactly; the sampling sketches (nitrosketch, heavykeeper) replace
//     the seeded native randomness pool with the VM helper RNG in their
//     pure-eBPF flavour, so that flavour is held to metamorphic
//     error-bound oracles against ground-truth flow counts instead.
//
//   - VM differential fuzzing (refvm.go, gen.go): a naive spec-style
//     reference interpreter cross-checked against internal/ebpf/vm on
//     generated verifier-valid programs — final registers, stack bytes,
//     map state, and verdict — with golden execution traces for a fixed
//     corpus.
//
//   - Native fuzz targets (in the subject packages, seeded from
//     committed corpora) for maps, verifier, nhash, and bitops.
package difftest

import (
	"fmt"

	"enetstl/internal/harness"
	"enetstl/internal/nf"
	"enetstl/internal/nf/bloom"
	"enetstl/internal/nf/vbf"
	"enetstl/internal/nfcatalog"
	"enetstl/internal/pktgen"
)

// Sketch geometry mirrored from nfcatalog's constructors; the
// metamorphic bounds below are stated in these terms. A drift here is
// caught loudly: the bounds are checked on every make check.
const (
	cmWidth  = 4096 // cmsketch/nitrosketch width (counters per row)
	ssSlots  = 64   // spacesaving monitored slots
	nsSample = 16   // nitrosketch sampling period (1/p) == increment
)

// Divergence is one equivalence violation.
type Divergence struct {
	Case   string
	Kind   string // verdict | error | estimate | bound | trace
	Packet int    // -1 for post-replay probes
	Detail string
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s pkt=%d %s: %s", d.Case, d.Packet, d.Kind, d.Detail)
}

// maxDivergences bounds the stored details; Total keeps the true count.
const maxDivergences = 50

// Report aggregates one equivalence run.
type Report struct {
	Cases     int
	Instances int
	Packets   int // packets replayed across all instances
	Probes    int // post-replay estimator/metamorphic checks

	Divergences []Divergence
	Total       uint64
}

// Failed reports whether any divergence was observed.
func (r *Report) Failed() bool { return r.Total > 0 }

func (r *Report) String() string {
	out := fmt.Sprintf("difftest: %d cases, %d instances, %d packets replayed, %d probes, %d divergences",
		r.Cases, r.Instances, r.Packets, r.Probes, r.Total)
	for _, d := range r.Divergences {
		out += "\n  " + d.String()
	}
	return out
}

func (r *Report) diverge(d Divergence) {
	r.Total++
	if len(r.Divergences) < maxDivergences {
		r.Divergences = append(r.Divergences, d)
	}
}

// Config shapes the equivalence run; the zero value uses the defaults
// of nfcatalog.DiffConfig.
type Config struct {
	Packets int
	Flows   int
	Seed    int64
	ZipfS   float64
}

// RunEquivalence builds every registered NF in all supported flavours
// and differentially replays them.
func RunEquivalence(cfg Config) (*Report, error) {
	cases, err := nfcatalog.DiffCases(nfcatalog.DiffConfig{
		Packets: cfg.Packets, Flows: cfg.Flows, Seed: cfg.Seed, ZipfS: cfg.ZipfS})
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	for _, c := range cases {
		runCase(rep, c)
	}
	return rep, nil
}

// runCase replays one NF's flavours and applies the oracles.
func runCase(rep *Report, c nfcatalog.DiffCase) {
	rep.Cases++
	rep.Instances += len(c.Insts)
	caseName := func(i int) string {
		return fmt.Sprintf("%s/%v", c.Name, c.Flavors[i])
	}

	// The constructors mutate their trace clones (op mixes) — all
	// deterministically, so the streams must still be bit-identical.
	// A mismatch here means the flavours did not see the same input and
	// every downstream comparison would be vacuous.
	for i := 1; i < len(c.Traces); i++ {
		if !tracesEqual(c.Traces[0], c.Traces[i]) {
			rep.diverge(Divergence{Case: caseName(i), Kind: "trace", Packet: -1,
				Detail: "per-flavour trace clones diverged before replay"})
			return
		}
	}

	verdicts := make([][]uint64, len(c.Insts))
	errs := make([]error, len(c.Insts))
	for i, inst := range c.Insts {
		verdicts[i], errs[i] = harness.Verdicts(inst, c.Traces[i])
		rep.Packets += len(verdicts[i])
	}

	// Error parity: a flavour erroring where another does not is a
	// divergence regardless of verdicts.
	for i := 1; i < len(c.Insts); i++ {
		if (errs[0] == nil) != (errs[i] == nil) {
			rep.diverge(Divergence{Case: caseName(i), Kind: "error", Packet: len(verdicts[i]),
				Detail: fmt.Sprintf("error parity: %v=%v, %v=%v",
					c.Flavors[0], errs[0], c.Flavors[i], errs[i])})
		}
	}

	// Verdict-for-verdict equality against the Kernel flavour. The
	// sampling sketches emit a constant verdict, so this holds for them
	// too; their divergent state is handled by the estimate oracles.
	for i := 1; i < len(c.Insts); i++ {
		n := len(verdicts[0])
		if len(verdicts[i]) < n {
			n = len(verdicts[i])
		}
		for p := 0; p < n; p++ {
			if verdicts[0][p] != verdicts[i][p] {
				rep.diverge(Divergence{Case: caseName(i), Kind: "verdict", Packet: p,
					Detail: fmt.Sprintf("%v=%d %v=%d", c.Flavors[0], verdicts[0][p],
						c.Flavors[i], verdicts[i][p])})
				break // first mismatch per pair is enough to localize
			}
		}
	}

	// Estimator probes: pairwise exactness where the contract is exact,
	// metamorphic ground-truth bounds everywhere.
	counts := flowCounts(c.Traces[0])
	if c.Estimates[0] != nil {
		for f, key := range c.Traces[0].FlowKeys {
			base := c.Estimates[0](key[:])
			for i := 1; i < len(c.Insts); i++ {
				if c.Oracle == nfcatalog.OracleEstimate && c.Flavors[i] == nf.EBPF {
					continue // helper-RNG flavour: bounds below, not equality
				}
				rep.Probes++
				if got := c.Estimates[i](key[:]); got != base {
					rep.diverge(Divergence{Case: caseName(i), Kind: "estimate", Packet: -1,
						Detail: fmt.Sprintf("flow %d: %v=%d %v=%d", f,
							c.Flavors[0], base, c.Flavors[i], got)})
				}
			}
		}
	}
	for i := range c.Insts {
		if c.Estimates[i] == nil {
			continue
		}
		checkBounds(rep, caseName(i), c.Name, c.Estimates[i], c.Traces[0], counts)
	}

	// Verdict-stream metamorphic oracles for the filters, applied to the
	// Kernel stream (all flavours are already proven equal to it above).
	switch c.Name {
	case "bloom":
		checkBloomStream(rep, caseName(0), c.Traces[0], verdicts[0])
	case "vbf":
		checkVBFStream(rep, caseName(0), c.Traces[0], verdicts[0])
	}
}

// flowCounts returns the per-flow packet counts — the ground truth the
// sketch estimates approximate (every sketch NF updates on every
// packet).
func flowCounts(t *pktgen.Trace) []uint32 {
	counts := make([]uint32, len(t.FlowKeys))
	for _, f := range t.FlowOf {
		counts[f]++
	}
	return counts
}

// checkBounds applies the per-NF metamorphic error-bound oracle to one
// flavour's estimator. The bounds are deterministic facts about this
// repo's seeded replays (every RNG involved is seeded), stated with the
// structures' analytical error terms plus slack, so they hold for any
// trace configuration in the same regime rather than pinning exact
// values.
func checkBounds(rep *Report, caseName, nfName string, est func([]byte) uint32, t *pktgen.Trace, counts []uint32) {
	n := uint32(len(t.Packets))
	for f, key := range t.FlowKeys {
		tc := counts[f]
		got := est(key[:])
		rep.Probes++
		var bad string
		switch nfName {
		case "cmsketch":
			// Count-min never undercounts; the row-collision overcount is
			// ~N/width per row, taken min over 8 rows. 8N/width + 16 is
			// orders of magnitude of slack.
			if got < tc {
				bad = fmt.Sprintf("count-min undercount: est %d < true %d", got, tc)
			} else if over := got - tc; over > 8*n/cmWidth+16 {
				bad = fmt.Sprintf("count-min overcount: est %d, true %d, bound +%d", got, tc, 8*n/cmWidth+16)
			}
		case "nitrosketch":
			// Sampled updates (p=1/16, increment 16) make the estimate
			// unbiased with stddev ~sqrt(15·true)·4; a ±(true/2 + 24·sample)
			// band is >6 sigma for every flow in this regime.
			slack := tc/2 + 24*nsSample
			if got > tc+slack || got+slack < tc {
				bad = fmt.Sprintf("nitrosketch estimate %d outside true %d ± %d", got, tc, slack)
			}
		case "heavykeeper":
			// Count-with-exponential-decay never overcounts its own flow
			// (+4 covers a fingerprint collision, none occurs at 256
			// flows); heavy flows must retain at least half their count.
			if got > tc+4 {
				bad = fmt.Sprintf("heavykeeper overcount: est %d > true %d", got, tc)
			} else if tc >= n/10 && got < tc/2 {
				bad = fmt.Sprintf("heavykeeper lost a heavy flow: est %d, true %d", got, tc)
			}
		case "spacesaving":
			// A monitored key's count overshoots by at most the stream
			// error N/slots (doubled for slack); unmonitored keys read 0.
			if got != 0 && got > tc+2*n/ssSlots {
				bad = fmt.Sprintf("space-saving overcount: est %d, true %d, bound +%d", got, tc, 2*n/ssSlots)
			}
		case "vbf":
			// Membership of the inserted set can never be lost (no false
			// negatives): flow f was inserted into set f%32.
			if got&(1<<uint(f%32)) == 0 {
				bad = fmt.Sprintf("vbf false negative: flow %d missing from set %d (mask %#x)", f, f%32, got)
			}
		default:
			rep.Probes-- // no ground-truth oracle for this estimator
		}
		if bad != "" {
			rep.diverge(Divergence{Case: caseName, Kind: "bound", Packet: -1, Detail: bad})
			return // one per case localizes; more adds noise
		}
	}
}

// checkBloomStream asserts the filter's no-false-negative contract over
// the replayed verdict stream: once a flow has been inserted, every
// later test of that flow must return Member.
func checkBloomStream(rep *Report, caseName string, t *pktgen.Trace, verdicts []uint64) {
	inserted := make([]bool, len(t.FlowKeys))
	for p := range t.Packets {
		if p >= len(verdicts) {
			return
		}
		f := t.FlowOf[p]
		op := uint32(t.Packets[p][nf.OffOp]) | uint32(t.Packets[p][nf.OffOp+1])<<8 |
			uint32(t.Packets[p][nf.OffOp+2])<<16 | uint32(t.Packets[p][nf.OffOp+3])<<24
		rep.Probes++
		switch op {
		case nf.OpUpdate:
			inserted[f] = true
		case nf.OpLookup:
			if inserted[f] && verdicts[p] != uint64(bloom.Member) {
				rep.diverge(Divergence{Case: caseName, Kind: "bound", Packet: p,
					Detail: fmt.Sprintf("bloom false negative: flow %d tested %d after insert", f, verdicts[p])})
				return
			}
		}
	}
}

// checkVBFStream asserts the vector filter's membership contract over
// the verdict stream: every packet queries its flow, which was inserted
// into set flow%32 at construction.
func checkVBFStream(rep *Report, caseName string, t *pktgen.Trace, verdicts []uint64) {
	for p := range t.Packets {
		if p >= len(verdicts) {
			return
		}
		f := t.FlowOf[p]
		rep.Probes++
		mask := verdicts[p] - vbf.MatchBase
		if verdicts[p] < vbf.MatchBase || mask&(1<<uint(int(f)%32)) == 0 {
			rep.diverge(Divergence{Case: caseName, Kind: "bound", Packet: p,
				Detail: fmt.Sprintf("vbf false negative: flow %d verdict %#x missing set %d", f, verdicts[p], int(f)%32)})
			return
		}
	}
}

func tracesEqual(a, b *pktgen.Trace) bool {
	if len(a.Packets) != len(b.Packets) || len(a.FlowKeys) != len(b.FlowKeys) ||
		len(a.FlowOf) != len(b.FlowOf) {
		return false
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			return false
		}
	}
	for i := range a.FlowKeys {
		if a.FlowKeys[i] != b.FlowKeys[i] {
			return false
		}
	}
	for i := range a.FlowOf {
		if a.FlowOf[i] != b.FlowOf[i] {
			return false
		}
	}
	return true
}
