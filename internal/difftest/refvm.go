// A naive spec-style reference interpreter for the simulated eBPF ISA.
//
// RefVM is deliberately written as a direct transcription of the ISA
// and ABI documentation — one flat switch, no dispatch tricks, no code
// shared with internal/ebpf/vm — so the two interpreters fail
// independently. The contract it transcribes:
//
//   - pointers are regionID<<32 | offset; region 0 is reserved (NULL is
//     never valid), the 512-byte stack is region 1, the context region
//     2, and each registered map takes the next region for its arena
//     followed by one for the (non-addressable) map object;
//   - on entry R1 = ctx pointer, R2 = len(ctx), R10 = stack top;
//   - helper calls put the result in R0 and clobber R1-R5 to zero;
//   - div by zero yields 0, mod by zero leaves dst unchanged, shifts
//     mask to the operand width, ALU32 results zero-extend;
//   - bpf_get_prandom_u32 is the kernel's four-LFSR tausworthe
//     generator, lazily seeded from the documented initial state;
//   - execution is bounded by a 1<<22 instruction budget.
package difftest

import (
	"errors"
	"fmt"

	"enetstl/internal/ebpf/isa"
	"enetstl/internal/ebpf/vm"
)

// Reference errors; only nil-ness is compared against the real VM.
var (
	errRefOOB    = errors.New("refvm: out-of-bounds access")
	errRefBadPtr = errors.New("refvm: bad pointer")
	errRefBudget = errors.New("refvm: budget exhausted")
	errRefInstr  = errors.New("refvm: malformed instruction")
)

// refStackSize mirrors the documented per-program stack size.
const refStackSize = 512

// RefArray models one array map: fixed-size values addressed by a u32
// index key, backed by a flat byte arena.
type RefArray struct {
	ValueSize int
	N         int
	Data      []byte

	arenaRegion  uint64
	objectRegion uint64
}

// RefVM is the reference machine: fixed stack, a context buffer, and
// array maps registered in FD order.
type RefVM struct {
	Stack  [refStackSize]byte
	Ctx    []byte
	Maps   []*RefArray
	Now    uint64
	Budget int

	// TraceFn, when set, observes every executed instruction with the
	// register file as it stands after the instruction retired. The
	// golden-trace corpus is recorded through it.
	TraceFn func(step, pc int, ins isa.Instruction, regs *[isa.NumRegs]uint64)

	taus       [4]uint32
	rngState   uint64
	nextRegion uint64
}

// NewRef builds an empty reference machine with the documented initial
// RNG state and budget.
func NewRef() *RefVM {
	return &RefVM{
		Budget:     1 << 22,
		rngState:   0x9e3779b97f4a7c15,
		nextRegion: 3, // 0 reserved, 1 stack, 2 ctx
	}
}

// AddArray registers an array map and returns its FD. Must mirror the
// registration order used on the machine under test.
func (r *RefVM) AddArray(valueSize, n int) int32 {
	m := &RefArray{
		ValueSize:    valueSize,
		N:            n,
		Data:         make([]byte, valueSize*n),
		arenaRegion:  r.nextRegion,
		objectRegion: r.nextRegion + 1,
	}
	r.nextRegion += 2
	r.Maps = append(r.Maps, m)
	return int32(len(r.Maps) - 1)
}

// mem resolves ptr to n bytes of backing storage.
func (r *RefVM) mem(ptr uint64, n int) ([]byte, error) {
	if ptr == 0 {
		return nil, errRefBadPtr
	}
	id := ptr >> 32
	off := ptr & 0xffffffff
	var region []byte
	switch {
	case id == 1:
		region = r.Stack[:]
	case id == 2:
		region = r.Ctx
	default:
		for _, m := range r.Maps {
			if id == m.arenaRegion {
				region = m.Data
			}
		}
		if region == nil {
			return nil, errRefBadPtr
		}
	}
	if off+uint64(n) > uint64(len(region)) {
		return nil, errRefOOB
	}
	return region[off : off+uint64(n)], nil
}

func refLoadLE(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func refStoreLE(b []byte, v uint64) {
	for i := range b {
		b[i] = byte(v)
		v >>= 8
	}
}

// prandom32 transcribes prandom_u32_state with the lazy seeding rule.
func (r *RefVM) prandom32() uint32 {
	s := &r.taus
	if s[0] == 0 {
		seed := uint32(r.rngState) | 1
		s[0], s[1], s[2], s[3] = seed^0x9e3779b9, seed^0x7f4a7c15, seed^0x85ebca6b, seed^0xc2b2ae35
		if s[0] < 2 {
			s[0] += 2
		}
		if s[1] < 8 {
			s[1] += 8
		}
		if s[2] < 16 {
			s[2] += 16
		}
		if s[3] < 128 {
			s[3] += 128
		}
	}
	s[0] = ((s[0] & 0xfffffffe) << 18) ^ (((s[0] << 6) ^ s[0]) >> 13)
	s[1] = ((s[1] & 0xfffffff8) << 2) ^ (((s[1] << 2) ^ s[1]) >> 27)
	s[2] = ((s[2] & 0xfffffff0) << 7) ^ (((s[2] << 13) ^ s[2]) >> 21)
	s[3] = ((s[3] & 0xffffff80) << 13) ^ (((s[3] << 3) ^ s[3]) >> 12)
	return s[0] ^ s[1] ^ s[2] ^ s[3]
}

// mapByObject resolves a map-object pointer to its model.
func (r *RefVM) mapByObject(ptr uint64) (*RefArray, error) {
	if ptr&0xffffffff != 0 {
		return nil, errRefBadPtr
	}
	for _, m := range r.Maps {
		if ptr>>32 == m.objectRegion {
			return m, nil
		}
	}
	return nil, errRefBadPtr
}

// helper dispatches the helper subset the differential corpus uses.
func (r *RefVM) helper(id int32, regs *[isa.NumRegs]uint64) error {
	var ret uint64
	switch id {
	case vm.HelperMapLookup:
		m, err := r.mapByObject(regs[1])
		if err != nil {
			return err
		}
		key, err := r.mem(regs[2], 4)
		if err != nil {
			return err
		}
		idx := refLoadLE(key)
		if idx < uint64(m.N) {
			ret = m.arenaRegion<<32 + idx*uint64(m.ValueSize)
		}
	case vm.HelperMapUpdate:
		m, err := r.mapByObject(regs[1])
		if err != nil {
			return err
		}
		key, err := r.mem(regs[2], 4)
		if err != nil {
			return err
		}
		val, err := r.mem(regs[3], m.ValueSize)
		if err != nil {
			return err
		}
		idx := refLoadLE(key)
		if idx < uint64(m.N) {
			copy(m.Data[int(idx)*m.ValueSize:], val)
		} else {
			ret = ^uint64(0)
		}
	case vm.HelperKtimeGetNS:
		ret = r.Now
	case vm.HelperGetPrandomU32:
		ret = uint64(r.prandom32())
	default:
		return fmt.Errorf("refvm: unsupported helper %d", id)
	}
	regs[0] = ret
	regs[1], regs[2], regs[3], regs[4], regs[5] = 0, 0, 0, 0, 0
	return nil
}

// Run interprets prog over ctx and returns the final register file.
// The program may carry unresolved PseudoMapFD loads: the reference
// machine resolves them against its own map table, producing the same
// pointer bits as the real loader by the shared region discipline.
func (r *RefVM) Run(prog []isa.Instruction, ctx []byte) ([isa.NumRegs]uint64, error) {
	var regs [isa.NumRegs]uint64
	r.Ctx = ctx
	regs[1] = 2 << 32
	regs[2] = uint64(len(ctx))
	regs[10] = 1<<32 + refStackSize

	budget := r.Budget
	pc := 0
	step := 0
	for {
		if budget <= 0 {
			return regs, errRefBudget
		}
		if pc < 0 || pc >= len(prog) {
			return regs, fmt.Errorf("%w: pc %d", errRefInstr, pc)
		}
		budget--
		ins := prog[pc]
		if ins.Dst >= isa.NumRegs || (ins.Src >= isa.NumRegs && ins.Class() != isa.ClassLD) {
			return regs, fmt.Errorf("%w: register out of range at %d", errRefInstr, pc)
		}
		switch ins.Class() {
		case isa.ClassALU64:
			src := uint64(int64(ins.Imm))
			if ins.SrcIsReg() {
				src = regs[ins.Src]
			}
			v, err := refALU64(ins.ALUOp(), regs[ins.Dst], src)
			if err != nil {
				return regs, fmt.Errorf("%w at %d", err, pc)
			}
			regs[ins.Dst] = v
		case isa.ClassALU:
			src := uint32(ins.Imm)
			if ins.SrcIsReg() {
				src = uint32(regs[ins.Src])
			}
			v, err := refALU32(ins.ALUOp(), uint32(regs[ins.Dst]), src)
			if err != nil {
				return regs, fmt.Errorf("%w at %d", err, pc)
			}
			regs[ins.Dst] = uint64(v)
		case isa.ClassJMP:
			switch ins.JmpOp() {
			case isa.JmpExit:
				if r.TraceFn != nil {
					r.TraceFn(step, pc, ins, &regs)
				}
				return regs, nil
			case isa.JmpCall:
				if ins.Src == isa.PseudoKfuncCall {
					return regs, fmt.Errorf("refvm: kfuncs unsupported (id %d at %d)", ins.Imm, pc)
				}
				if err := r.helper(ins.Imm, &regs); err != nil {
					return regs, err
				}
			case isa.JmpJA:
				pc += int(ins.Off)
			default:
				src := uint64(int64(ins.Imm))
				if ins.SrcIsReg() {
					src = regs[ins.Src]
				}
				if refJump(ins.JmpOp(), regs[ins.Dst], src) {
					pc += int(ins.Off)
				}
			}
		case isa.ClassJMP32:
			src := uint64(uint32(ins.Imm))
			if ins.SrcIsReg() {
				src = uint64(uint32(regs[ins.Src]))
			}
			if refJump(ins.JmpOp(), uint64(uint32(regs[ins.Dst])), src) {
				pc += int(ins.Off)
			}
		case isa.ClassLDX:
			b, err := r.mem(regs[ins.Src]+uint64(int64(ins.Off)), ins.MemSize())
			if err != nil {
				return regs, fmt.Errorf("%w at %d", err, pc)
			}
			regs[ins.Dst] = refLoadLE(b)
		case isa.ClassSTX:
			b, err := r.mem(regs[ins.Dst]+uint64(int64(ins.Off)), ins.MemSize())
			if err != nil {
				return regs, fmt.Errorf("%w at %d", err, pc)
			}
			refStoreLE(b, regs[ins.Src])
		case isa.ClassST:
			b, err := r.mem(regs[ins.Dst]+uint64(int64(ins.Off)), ins.MemSize())
			if err != nil {
				return regs, fmt.Errorf("%w at %d", err, pc)
			}
			refStoreLE(b, uint64(int64(ins.Imm)))
		case isa.ClassLD:
			if !ins.IsLoadImm64() || pc+1 >= len(prog) {
				return regs, fmt.Errorf("%w: ld at %d", errRefInstr, pc)
			}
			hi := prog[pc+1]
			if ins.Src == isa.PseudoMapFD {
				if int(ins.Imm) < 0 || int(ins.Imm) >= len(r.Maps) {
					return regs, fmt.Errorf("refvm: unknown map fd %d at %d", ins.Imm, pc)
				}
				regs[ins.Dst] = r.Maps[ins.Imm].objectRegion << 32
			} else {
				regs[ins.Dst] = uint64(uint32(ins.Imm)) | uint64(uint32(hi.Imm))<<32
			}
			pc++
		default:
			return regs, fmt.Errorf("%w: class %#x at %d", errRefInstr, ins.Op, pc)
		}
		if r.TraceFn != nil {
			r.TraceFn(step, pc, ins, &regs)
		}
		step++
		pc++
	}
}

func refALU64(op uint8, dst, src uint64) (uint64, error) {
	switch op {
	case isa.ALUAdd:
		return dst + src, nil
	case isa.ALUSub:
		return dst - src, nil
	case isa.ALUMul:
		return dst * src, nil
	case isa.ALUDiv:
		if src == 0 {
			return 0, nil
		}
		return dst / src, nil
	case isa.ALUMod:
		if src == 0 {
			return dst, nil
		}
		return dst % src, nil
	case isa.ALUOr:
		return dst | src, nil
	case isa.ALUAnd:
		return dst & src, nil
	case isa.ALULsh:
		return dst << (src & 63), nil
	case isa.ALURsh:
		return dst >> (src & 63), nil
	case isa.ALUArsh:
		return uint64(int64(dst) >> (src & 63)), nil
	case isa.ALUXor:
		return dst ^ src, nil
	case isa.ALUMov:
		return src, nil
	case isa.ALUNeg:
		return -dst, nil
	}
	return 0, errRefInstr
}

func refALU32(op uint8, dst, src uint32) (uint32, error) {
	switch op {
	case isa.ALUAdd:
		return dst + src, nil
	case isa.ALUSub:
		return dst - src, nil
	case isa.ALUMul:
		return dst * src, nil
	case isa.ALUDiv:
		if src == 0 {
			return 0, nil
		}
		return dst / src, nil
	case isa.ALUMod:
		if src == 0 {
			return dst, nil
		}
		return dst % src, nil
	case isa.ALUOr:
		return dst | src, nil
	case isa.ALUAnd:
		return dst & src, nil
	case isa.ALULsh:
		return dst << (src & 31), nil
	case isa.ALURsh:
		return dst >> (src & 31), nil
	case isa.ALUArsh:
		return uint32(int32(dst) >> (src & 31)), nil
	case isa.ALUXor:
		return dst ^ src, nil
	case isa.ALUMov:
		return src, nil
	case isa.ALUNeg:
		return -dst, nil
	}
	return 0, errRefInstr
}

func refJump(op uint8, dst, src uint64) bool {
	switch op {
	case isa.JmpJEQ:
		return dst == src
	case isa.JmpJNE:
		return dst != src
	case isa.JmpJGT:
		return dst > src
	case isa.JmpJGE:
		return dst >= src
	case isa.JmpJLT:
		return dst < src
	case isa.JmpJLE:
		return dst <= src
	case isa.JmpJSET:
		return dst&src != 0
	case isa.JmpJSGT:
		return int64(dst) > int64(src)
	case isa.JmpJSGE:
		return int64(dst) >= int64(src)
	case isa.JmpJSLT:
		return int64(dst) < int64(src)
	case isa.JmpJSLE:
		return int64(dst) <= int64(src)
	}
	return false
}
