// Package pktgen generates the synthetic traffic the benchmark harness
// replays: 64-byte packets with 5-tuple flow keys, configurable flow
// popularity (uniform or zipf), and per-NF operation mixes. It stands in
// for the paper's pktgen-DPDK sender (the substitution is documented in
// DESIGN.md): single-core NF throughput is CPU-bound, so replaying an
// in-memory trace exercises the same per-packet work.
package pktgen

import (
	"encoding/binary"
	"math"
	"math/rand"

	"enetstl/internal/nf"
	"enetstl/internal/trace"
)

// Packet is one synthetic 64-byte packet.
type Packet [nf.PktSize]byte

// Config controls trace generation.
type Config struct {
	// Flows is the number of distinct flows (5-tuples).
	Flows int
	// Packets is the trace length.
	Packets int
	// ZipfS > 0 selects a zipf flow popularity with that skew
	// (typical heavy-tailed traffic uses 1.0-1.3); 0 means uniform.
	ZipfS float64
	// Seed makes the trace deterministic.
	Seed int64
}

// Trace is a generated packet sequence plus its flow table. Attack
// scenarios (GenerateAttack) additionally carry ground-truth metadata:
// per-packet labels and arrival ticks, plus the window list. Benign
// traces leave those fields nil; consumers treat nil Arrival as one
// tick per packet.
type Trace struct {
	Packets []Packet
	// FlowKeys holds the KeyLen-byte key of each flow.
	FlowKeys [][nf.KeyLen]byte
	// FlowOf maps each packet index to its flow index.
	FlowOf []int32

	// Labels marks each packet 0 = benign, 1 = attack (ground truth for
	// scenario traces; nil for benign traces). Parallel to Packets.
	Labels []uint8
	// Arrival is each packet's virtual arrival tick: a monotone
	// non-decreasing clock where one tick is one benign inter-arrival
	// gap. Attack bursts put several packets on the same tick, which is
	// how the overload guard's token bucket sees a rate spike without
	// any wall-clock dependence. Nil means packet i arrives at tick i.
	Arrival []uint64
	// Windows lists the attack windows in arrival-tick terms. Ticks
	// travel with packets through Shard, so window membership is
	// shard-count-invariant (packet-index ranges would not be).
	Windows []Window
	// Scenario names the generator that produced the trace ("" benign).
	Scenario string
}

// Window is one attack window: the arrival-tick range [Start, End).
type Window struct {
	Start, End uint64
}

// Contains reports whether tick falls inside the window.
func (w Window) Contains(tick uint64) bool { return tick >= w.Start && tick < w.End }

// ArrivalOf returns packet i's arrival tick (i itself for benign
// traces, which carry no explicit arrival clock).
func (t *Trace) ArrivalOf(i int) uint64 {
	if t.Arrival == nil {
		return uint64(i)
	}
	return t.Arrival[i]
}

// InWindow reports whether tick falls inside any attack window.
func (t *Trace) InWindow(tick uint64) bool {
	for _, w := range t.Windows {
		if w.Contains(tick) {
			return true
		}
	}
	return false
}

// AttackPackets counts labeled attack packets.
func (t *Trace) AttackPackets() int {
	n := 0
	for _, l := range t.Labels {
		if l != 0 {
			n++
		}
	}
	return n
}

// flowKey synthesizes a deterministic 5-tuple for flow i: distinct
// addresses/ports, proto TCP, zero padding to KeyLen.
func flowKey(i int, rng *rand.Rand) [nf.KeyLen]byte {
	var k [nf.KeyLen]byte
	binary.LittleEndian.PutUint32(k[0:], 0x0a000000|uint32(i))           // src IP 10.x
	binary.LittleEndian.PutUint32(k[4:], 0xac100000|uint32(rng.Int31())) // dst IP
	binary.LittleEndian.PutUint16(k[8:], uint16(1024+i%60000))           // src port
	binary.LittleEndian.PutUint16(k[10:], 443)                           // dst port
	k[12] = 6                                                            // TCP
	return k
}

// Generate builds a trace.
func Generate(cfg Config) *Trace {
	if cfg.Flows <= 0 {
		cfg.Flows = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Trace{
		Packets:  make([]Packet, cfg.Packets),
		FlowKeys: make([][nf.KeyLen]byte, cfg.Flows),
		FlowOf:   make([]int32, cfg.Packets),
	}
	for i := range t.FlowKeys {
		t.FlowKeys[i] = flowKey(i, rng)
	}
	var z *rand.Zipf
	if cfg.ZipfS > 0 {
		z = rand.NewZipf(rng, math.Max(cfg.ZipfS, 1.001), 1, uint64(cfg.Flows-1))
	}
	for i := range t.Packets {
		var f int
		if z != nil {
			f = int(z.Uint64())
		} else {
			f = rng.Intn(cfg.Flows)
		}
		t.FlowOf[i] = int32(f)
		copy(t.Packets[i][:], t.FlowKeys[f][:])
	}
	return t
}

// FlowHash hashes a flow key as NIC RSS hashes the 5-tuple: FNV-1a
// over the key bytes with a murmur-style avalanche finisher so the low
// bits (which shard selection reduces mod N) mix the whole tuple. It
// is the single flow-keying function in the tree — the RSS sharder
// partitions traces with it and the op-mix helpers derive per-flow
// arguments from it.
func FlowHash(key []byte) uint32 {
	// The implementation lives in internal/trace so the VM (which cannot
	// import pktgen) computes identical flow hashes: /trace flow filters,
	// RSS sharding, and op-mix argument keying all agree on one function.
	return trace.FlowHash(key)
}

// ShardOf maps a flow key to one of n RSS shards.
func ShardOf(key []byte, n int) int {
	if n <= 1 {
		return 0
	}
	return int(FlowHash(key) % uint32(n))
}

// Shard hash-partitions the trace into n sub-traces by flow 5-tuple,
// as NIC RSS spreads flows across receive queues: all packets of one
// flow land in the same shard, in their original relative order, and
// the flow→shard assignment depends only on the flow key. Each
// sub-trace keeps the full flow table (FlowKeys, which FlowOf indexes)
// so per-shard NF construction preloads identical tables regardless of
// shard count — the per-CPU replica model. Packets are deep-copied;
// shards are safe to mutate independently.
func (t *Trace) Shard(n int) []*Trace {
	if n <= 1 {
		return []*Trace{t.Clone()}
	}
	shards := make([]*Trace, n)
	for s := range shards {
		shards[s] = &Trace{
			FlowKeys: append([][nf.KeyLen]byte(nil), t.FlowKeys...),
			Windows:  append([]Window(nil), t.Windows...),
			Scenario: t.Scenario,
		}
	}
	for i := range t.Packets {
		s := shards[ShardOf(t.Packets[i].Key(), n)]
		s.Packets = append(s.Packets, t.Packets[i])
		s.FlowOf = append(s.FlowOf, t.FlowOf[i])
		if t.Labels != nil {
			s.Labels = append(s.Labels, t.Labels[i])
		}
		if t.Arrival != nil {
			s.Arrival = append(s.Arrival, t.Arrival[i])
		}
	}
	return shards
}

// Clone deep-copies the trace. Differential replay needs bit-identical
// input streams per flavour, and op-mix application mutates packets in
// place, so each instance under comparison replays its own clone.
func (t *Trace) Clone() *Trace {
	c := &Trace{
		Packets:  make([]Packet, len(t.Packets)),
		FlowKeys: make([][nf.KeyLen]byte, len(t.FlowKeys)),
		FlowOf:   make([]int32, len(t.FlowOf)),
		Scenario: t.Scenario,
	}
	copy(c.Packets, t.Packets)
	copy(c.FlowKeys, t.FlowKeys)
	copy(c.FlowOf, t.FlowOf)
	if t.Labels != nil {
		c.Labels = append([]uint8(nil), t.Labels...)
	}
	if t.Arrival != nil {
		c.Arrival = append([]uint64(nil), t.Arrival...)
	}
	if t.Windows != nil {
		c.Windows = append([]Window(nil), t.Windows...)
	}
	return c
}

// SetOp writes the operation selector of packet p.
func (p *Packet) SetOp(op uint32) {
	binary.LittleEndian.PutUint32(p[nf.OffOp:], op)
}

// SetArg writes the u32 argument field.
func (p *Packet) SetArg(a uint32) {
	binary.LittleEndian.PutUint32(p[nf.OffArg:], a)
}

// SetTS writes the u64 timestamp/deadline field.
func (p *Packet) SetTS(ts uint64) {
	binary.LittleEndian.PutUint64(p[nf.OffTS:], ts)
}

// Key returns the packet's flow key bytes.
func (p *Packet) Key() []byte { return p[nf.OffKey : nf.OffKey+nf.KeyLen] }

// ApplyOpMix assigns operation codes round-robin-weighted by ratios
// (e.g. {1,1} alternates two ops), deterministically.
func (t *Trace) ApplyOpMix(ops []uint32, weights []int) {
	if len(ops) != len(weights) || len(ops) == 0 {
		panic("pktgen: ops and weights must align")
	}
	var pattern []uint32
	for i, op := range ops {
		for j := 0; j < weights[i]; j++ {
			pattern = append(pattern, op)
		}
	}
	for i := range t.Packets {
		t.Packets[i].SetOp(pattern[i%len(pattern)])
	}
}

// ApplyArgKeys derives every packet's u32 argument (priority, index...)
// from its flow key via FlowHash, reduced mod bound when bound > 0.
// Flow-derived args are stable under resharding: a packet carries the
// same argument whether the trace is replayed whole or hash-partitioned
// across shards, which per-index keying cannot guarantee.
func (t *Trace) ApplyArgKeys(bound uint32) {
	for i := range t.Packets {
		a := FlowHash(t.Packets[i].Key())
		if bound > 0 {
			a %= bound
		}
		t.Packets[i].SetArg(a)
	}
}
