package pktgen

import (
	"testing"

	"enetstl/internal/ebpf/maps"
)

func attackCfg(kind ScenarioKind) AttackConfig {
	return AttackConfig{
		Base: Config{Flows: 192, Packets: 2000, ZipfS: 1.1, Seed: 7},
		Kind: kind,
	}
}

// TestAttackDeterministic: same config, same trace — bit for bit,
// metadata included.
func TestAttackDeterministic(t *testing.T) {
	for _, kind := range Scenarios() {
		a := GenerateAttack(attackCfg(kind))
		b := GenerateAttack(attackCfg(kind))
		if len(a.Packets) != len(b.Packets) || len(a.FlowKeys) != len(b.FlowKeys) {
			t.Fatalf("%v: shape diverged", kind)
		}
		for i := range a.Packets {
			if a.Packets[i] != b.Packets[i] || a.FlowOf[i] != b.FlowOf[i] ||
				a.Labels[i] != b.Labels[i] || a.Arrival[i] != b.Arrival[i] {
				t.Fatalf("%v: packet %d diverged across identical seeds", kind, i)
			}
		}
		if len(a.Windows) != len(b.Windows) {
			t.Fatalf("%v: window lists diverged", kind)
		}
	}
}

// TestAttackStructure sanity-checks every scenario's shape: attack
// packets exist, labels align with windows, the arrival clock is
// monotone and compressed inside windows, and ground truth (FlowOf vs
// packet key bytes) stays consistent.
func TestAttackStructure(t *testing.T) {
	for _, kind := range Scenarios() {
		tr := GenerateAttack(attackCfg(kind))
		if tr.Scenario != kind.String() {
			t.Errorf("%v: scenario name %q", kind, tr.Scenario)
		}
		if got := tr.AttackPackets(); got == 0 {
			t.Errorf("%v: no attack packets", kind)
		}
		if len(tr.Windows) != 2 {
			t.Errorf("%v: %d windows, want 2", kind, len(tr.Windows))
		}
		var prev uint64
		for i := range tr.Packets {
			if tr.Arrival[i] < prev {
				t.Fatalf("%v: arrival clock not monotone at %d", kind, i)
			}
			prev = tr.Arrival[i]
			if tr.Labels[i] == 1 && !tr.InWindow(tr.Arrival[i]) {
				t.Fatalf("%v: attack label outside every window at packet %d", kind, i)
			}
			f := tr.FlowOf[i]
			if [16]byte(tr.Packets[i][:16]) != tr.FlowKeys[f] {
				t.Fatalf("%v: packet %d key does not match FlowOf ground truth", kind, i)
			}
		}
		// Burst compression: the windows must pack more packets per tick
		// than the benign substrate's one.
		for _, w := range tr.Windows {
			inWin := 0
			for i := range tr.Packets {
				if w.Contains(tr.Arrival[i]) {
					inWin++
				}
			}
			ticks := w.End - w.Start
			if uint64(inWin) < 4*ticks {
				t.Errorf("%v: window [%d,%d) holds %d packets over %d ticks; want >=4x compression",
					kind, w.Start, w.End, inWin, ticks)
			}
		}
	}
}

// TestAttackCollision verifies the adversary's precomputation: every
// colliding key lands in one map-slot bucket chain and on one RSS
// shard, for the configured moduli and every power-of-two divisor.
func TestAttackCollision(t *testing.T) {
	tr := GenerateAttack(attackCfg(ScenarioCollision))
	var atk [][16]byte
	seen := map[int32]bool{}
	for i := range tr.Packets {
		if tr.Labels[i] == 1 && !seen[tr.FlowOf[i]] {
			seen[tr.FlowOf[i]] = true
			atk = append(atk, tr.FlowKeys[tr.FlowOf[i]])
		}
	}
	if len(atk) < 64 {
		t.Fatalf("only %d distinct attack flows labeled", len(atk))
	}
	slot := maps.SlotHash(atk[0][:]) % 1024
	for _, k := range atk {
		if maps.SlotHash(k[:])%1024 != slot {
			t.Fatalf("key does not collide in the 1024-slot hash")
		}
	}
	// Nested power-of-two moduli: colliding mod 1024 implies colliding in
	// any smaller power-of-two table (e.g. conntrack's 256 slots).
	for _, m := range []uint64{512, 256, 128} {
		for _, k := range atk {
			if maps.SlotHash(k[:])%m != slot%m {
				t.Fatalf("collision does not nest into %d-slot tables", m)
			}
		}
	}
	for _, shards := range []uint32{4, 2} {
		want := FlowHash(atk[0][:]) % shards
		for _, k := range atk {
			if FlowHash(k[:])%shards != want {
				t.Fatalf("key does not stack onto one of %d RSS shards", shards)
			}
		}
	}
}

// TestAttackCollisionSpills drives the adversary's colliding keys into
// a real bucketed map sized like conntrack's flow table and verifies
// the attack does what it claims: every key lands in one L1 bucket, so
// inserts past its 8 slots take the spill path through L2, L3, and the
// stash — and the map stays correct throughout (every key retrievable,
// deletes exact) even with the fast path fully defeated.
func TestAttackCollisionSpills(t *testing.T) {
	tr := GenerateAttack(attackCfg(ScenarioCollision))
	var atk [][16]byte
	seen := map[int32]bool{}
	for i := range tr.Packets {
		if tr.Labels[i] == 1 && !seen[tr.FlowOf[i]] {
			seen[tr.FlowOf[i]] = true
			atk = append(atk, tr.FlowKeys[tr.FlowOf[i]])
		}
	}
	if len(atk) < 100 {
		t.Fatalf("only %d distinct attack flows labeled", len(atk))
	}
	// conntrack's sizing: 128 entries -> 16 L1 buckets, so the mod-1024
	// collision set shares one L1 bucket.
	h, err := maps.NewBucketHash(16, 8, 128)
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 8)
	n := min(len(atk), 128)
	for i := 0; i < n; i++ {
		if err := h.Update(atk[i][:], val); err != nil {
			t.Fatalf("insert %d of colliding set: %v", i, err)
		}
	}
	if h.SpillsL2 == 0 {
		t.Fatal("collision load never overflowed the target L1 bucket")
	}
	if h.SpillsL3 == 0 {
		t.Fatal("collision load never reached the L3 spill path")
	}
	t.Logf("spills under %d colliding inserts: L2=%d L3=%d stash=%d",
		n, h.SpillsL2, h.SpillsL3, h.SpillsStash)
	// Correctness under full spill: every inserted key resolves, and
	// interleaved deletes stay exact (no tombstone machinery to get
	// wrong — the probe set per key is fixed).
	for i := 0; i < n; i++ {
		if h.Lookup(atk[i][:]) == nil {
			t.Fatalf("key %d lost under collision load", i)
		}
	}
	for i := 0; i < n; i += 2 {
		if err := h.Delete(atk[i][:]); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		got := h.Lookup(atk[i][:]) != nil
		if want := i%2 == 1; got != want {
			t.Fatalf("key %d presence %v after alternating deletes, want %v", i, got, want)
		}
	}
}

// TestAttackShardRoundTrip is the metadata round-trip contract: labels,
// arrival ticks, and window membership survive RSS sharding (and
// Clone), packet for packet — so a sharded replay sees exactly the
// attack structure the unsharded one does.
func TestAttackShardRoundTrip(t *testing.T) {
	for _, kind := range Scenarios() {
		tr := GenerateAttack(attackCfg(kind))
		if c := tr.Clone(); c.Scenario != tr.Scenario || len(c.Labels) != len(tr.Labels) ||
			len(c.Arrival) != len(tr.Arrival) || len(c.Windows) != len(tr.Windows) {
			t.Fatalf("%v: Clone dropped metadata", kind)
		}
		for _, n := range []int{2, 4} {
			shards := tr.Shard(n)
			var total int
			for s, sh := range shards {
				if sh.Scenario != tr.Scenario || len(sh.Windows) != len(tr.Windows) {
					t.Fatalf("%v: shard %d/%d lost scenario/window metadata", kind, s, n)
				}
				if len(sh.Labels) != len(sh.Packets) || len(sh.Arrival) != len(sh.Packets) {
					t.Fatalf("%v: shard %d/%d metadata length mismatch", kind, s, n)
				}
				total += len(sh.Packets)
			}
			if total != len(tr.Packets) {
				t.Fatalf("%v: shards hold %d packets, trace %d", kind, total, len(tr.Packets))
			}
			// Per-packet round trip: walk the original in order, matching
			// each packet to the head of its shard's stream.
			idx := make([]int, n)
			for i := range tr.Packets {
				s := ShardOf(tr.Packets[i].Key(), n)
				sh := shards[s]
				j := idx[s]
				idx[s]++
				if sh.Packets[j] != tr.Packets[i] || sh.FlowOf[j] != tr.FlowOf[i] ||
					sh.Labels[j] != tr.Labels[i] || sh.Arrival[j] != tr.Arrival[i] {
					t.Fatalf("%v: packet %d did not round-trip through shard %d/%d", kind, i, s, n)
				}
				if tr.InWindow(tr.Arrival[i]) != sh.InWindow(sh.Arrival[j]) {
					t.Fatalf("%v: packet %d window membership changed across sharding", kind, i)
				}
			}
		}
		// Collision scenario: the adversary's flows must actually stack on
		// one shard of 4.
		if kind == ScenarioCollision {
			shards := tr.Shard(4)
			for s, sh := range shards {
				atk := 0
				for _, l := range sh.Labels {
					if l == 1 {
						atk++
					}
				}
				if atk > 0 && atk != tr.AttackPackets() {
					t.Fatalf("collision flows split across shards (shard %d has %d of %d)",
						s, atk, tr.AttackPackets())
				}
			}
		}
	}
}

// TestAttackComposesWithOpMix: applying an op mix touches only op/arg
// fields, never keys or scenario metadata.
func TestAttackComposesWithOpMix(t *testing.T) {
	tr := GenerateAttack(attackCfg(ScenarioSYNFlood))
	before := tr.Clone()
	tr.ApplyOpMix([]uint32{1, 2}, []int{1, 1})
	tr.ApplyArgKeys(64)
	for i := range tr.Packets {
		if [16]byte(tr.Packets[i][:16]) != [16]byte(before.Packets[i][:16]) {
			t.Fatalf("op mix mutated the flow key of packet %d", i)
		}
		if tr.Labels[i] != before.Labels[i] || tr.Arrival[i] != before.Arrival[i] {
			t.Fatalf("op mix mutated metadata of packet %d", i)
		}
	}
}
