package pktgen

import (
	"encoding/binary"
	"testing"

	"enetstl/internal/nf"
)

func TestDeterministic(t *testing.T) {
	a := Generate(Config{Flows: 32, Packets: 500, ZipfS: 1.1, Seed: 9})
	b := Generate(Config{Flows: 32, Packets: 500, ZipfS: 1.1, Seed: 9})
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatalf("packet %d differs across same-seed runs", i)
		}
	}
	c := Generate(Config{Flows: 32, Packets: 500, ZipfS: 1.1, Seed: 10})
	same := true
	for i := range a.Packets {
		if a.Packets[i] != c.Packets[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestKeysDistinctAndWellFormed(t *testing.T) {
	tr := Generate(Config{Flows: 2000, Packets: 0, Seed: 1})
	seen := map[[nf.KeyLen]byte]bool{}
	for i, k := range tr.FlowKeys {
		if seen[k] {
			t.Fatalf("flow %d: duplicate key", i)
		}
		seen[k] = true
		if k[12] != 6 {
			t.Fatalf("flow %d: proto %d, want TCP", i, k[12])
		}
		for j := 13; j < nf.KeyLen; j++ {
			if k[j] != 0 {
				t.Fatalf("flow %d: padding byte %d not zero", i, j)
			}
		}
	}
}

func TestPacketsCarryFlowKey(t *testing.T) {
	tr := Generate(Config{Flows: 16, Packets: 300, Seed: 2})
	for i := range tr.Packets {
		f := tr.FlowOf[i]
		want := tr.FlowKeys[f]
		if string(tr.Packets[i][:nf.KeyLen]) != string(want[:]) {
			t.Fatalf("packet %d key mismatch with flow %d", i, f)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	tr := Generate(Config{Flows: 1000, Packets: 50000, ZipfS: 1.3, Seed: 3})
	counts := map[int32]int{}
	for _, f := range tr.FlowOf {
		counts[f]++
	}
	// The most popular flow should dwarf the median.
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 5000 {
		t.Fatalf("zipf head only %d of 50000", max)
	}
	uni := Generate(Config{Flows: 1000, Packets: 50000, Seed: 3})
	ucounts := map[int32]int{}
	for _, f := range uni.FlowOf {
		ucounts[f]++
	}
	umax := 0
	for _, n := range ucounts {
		if n > umax {
			umax = n
		}
	}
	if umax > 200 {
		t.Fatalf("uniform head %d of 50000, too skewed", umax)
	}
}

func TestOpMixAlternates(t *testing.T) {
	tr := Generate(Config{Flows: 4, Packets: 100, Seed: 4})
	tr.ApplyOpMix([]uint32{7, 9}, []int{1, 1})
	for i := range tr.Packets {
		got := binary.LittleEndian.Uint32(tr.Packets[i][nf.OffOp:])
		want := uint32(7)
		if i%2 == 1 {
			want = 9
		}
		if got != want {
			t.Fatalf("packet %d op %d, want %d", i, got, want)
		}
	}
}

func TestOpMixWeights(t *testing.T) {
	tr := Generate(Config{Flows: 4, Packets: 90, Seed: 5})
	tr.ApplyOpMix([]uint32{1, 2}, []int{2, 1})
	count := map[uint32]int{}
	for i := range tr.Packets {
		count[binary.LittleEndian.Uint32(tr.Packets[i][nf.OffOp:])]++
	}
	if count[1] != 60 || count[2] != 30 {
		t.Fatalf("weighted mix: %v", count)
	}
}

func TestFieldSetters(t *testing.T) {
	var p Packet
	p.SetOp(0xAABB)
	p.SetArg(0xCCDD)
	p.SetTS(0x1122334455667788)
	if binary.LittleEndian.Uint32(p[nf.OffOp:]) != 0xAABB ||
		binary.LittleEndian.Uint32(p[nf.OffArg:]) != 0xCCDD ||
		binary.LittleEndian.Uint64(p[nf.OffTS:]) != 0x1122334455667788 {
		t.Fatal("field setters broken")
	}
	if len(p.Key()) != nf.KeyLen {
		t.Fatal("key slice wrong")
	}
}

func TestFlowHashDeterministicAndSpreads(t *testing.T) {
	tr := Generate(Config{Flows: 4096, Packets: 0, Seed: 6})
	buckets := make([]int, 8)
	for i, k := range tr.FlowKeys {
		if FlowHash(k[:]) != FlowHash(k[:]) {
			t.Fatalf("flow %d: hash not deterministic", i)
		}
		buckets[ShardOf(k[:], 8)]++
	}
	// RSS only needs rough balance; sequential flow keys must not all
	// collapse into a few shards.
	for s, n := range buckets {
		if n < 4096/8/2 || n > 4096/8*2 {
			t.Fatalf("shard %d got %d of 4096 flows, want near %d", s, n, 4096/8)
		}
	}
	if ShardOf(tr.FlowKeys[0][:], 1) != 0 || ShardOf(tr.FlowKeys[0][:], 0) != 0 {
		t.Fatal("degenerate shard counts must map to shard 0")
	}
}

func TestShardPartitionsByFlow(t *testing.T) {
	tr := Generate(Config{Flows: 64, Packets: 2000, ZipfS: 1.1, Seed: 7})
	tr.ApplyOpMix([]uint32{1, 2}, []int{1, 1})
	for _, n := range []int{1, 2, 3, 4} {
		shards := tr.Shard(n)
		if len(shards) != n {
			t.Fatalf("Shard(%d) returned %d traces", n, len(shards))
		}
		total := 0
		for s, sub := range shards {
			total += len(sub.Packets)
			if len(sub.Packets) != len(sub.FlowOf) {
				t.Fatalf("shard %d/%d: FlowOf misaligned", s, n)
			}
			if len(sub.FlowKeys) != len(tr.FlowKeys) {
				t.Fatalf("shard %d/%d: flow table truncated", s, n)
			}
			for i := range sub.Packets {
				if got := ShardOf(sub.Packets[i].Key(), n); got != s {
					t.Fatalf("shard %d/%d: packet %d hashes to shard %d", s, n, i, got)
				}
				f := sub.FlowOf[i]
				if string(sub.Packets[i][:nf.KeyLen]) != string(sub.FlowKeys[f][:]) {
					t.Fatalf("shard %d/%d: packet %d key mismatch with flow %d", s, n, i, f)
				}
			}
		}
		if total != len(tr.Packets) {
			t.Fatalf("Shard(%d) kept %d of %d packets", n, total, len(tr.Packets))
		}
	}
}

func TestShardPreservesOrderWithinFlow(t *testing.T) {
	tr := Generate(Config{Flows: 16, Packets: 800, Seed: 8})
	// Tag each packet with its global index so order is observable.
	for i := range tr.Packets {
		tr.Packets[i].SetTS(uint64(i))
	}
	for _, sub := range tr.Shard(4) {
		last := map[int32]uint64{}
		for i := range sub.Packets {
			ts := binary.LittleEndian.Uint64(sub.Packets[i][nf.OffTS:])
			f := sub.FlowOf[i]
			if prev, ok := last[f]; ok && ts <= prev {
				t.Fatalf("flow %d reordered: %d after %d", f, ts, prev)
			}
			last[f] = ts
		}
	}
}

func TestApplyArgKeysIsFlowDerived(t *testing.T) {
	tr := Generate(Config{Flows: 32, Packets: 500, ZipfS: 1.1, Seed: 9})
	tr.ApplyArgKeys(0)
	for i := range tr.Packets {
		want := FlowHash(tr.Packets[i].Key())
		if got := binary.LittleEndian.Uint32(tr.Packets[i][nf.OffArg:]); got != want {
			t.Fatalf("packet %d arg %#x, want flow hash %#x", i, got, want)
		}
	}
	tr.ApplyArgKeys(64)
	for i := range tr.Packets {
		if got := binary.LittleEndian.Uint32(tr.Packets[i][nf.OffArg:]); got >= 64 {
			t.Fatalf("packet %d arg %d outside bound 64", i, got)
		}
	}
}
