package pktgen

import (
	"encoding/binary"
	"testing"

	"enetstl/internal/nf"
)

func TestDeterministic(t *testing.T) {
	a := Generate(Config{Flows: 32, Packets: 500, ZipfS: 1.1, Seed: 9})
	b := Generate(Config{Flows: 32, Packets: 500, ZipfS: 1.1, Seed: 9})
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatalf("packet %d differs across same-seed runs", i)
		}
	}
	c := Generate(Config{Flows: 32, Packets: 500, ZipfS: 1.1, Seed: 10})
	same := true
	for i := range a.Packets {
		if a.Packets[i] != c.Packets[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestKeysDistinctAndWellFormed(t *testing.T) {
	tr := Generate(Config{Flows: 2000, Packets: 0, Seed: 1})
	seen := map[[nf.KeyLen]byte]bool{}
	for i, k := range tr.FlowKeys {
		if seen[k] {
			t.Fatalf("flow %d: duplicate key", i)
		}
		seen[k] = true
		if k[12] != 6 {
			t.Fatalf("flow %d: proto %d, want TCP", i, k[12])
		}
		for j := 13; j < nf.KeyLen; j++ {
			if k[j] != 0 {
				t.Fatalf("flow %d: padding byte %d not zero", i, j)
			}
		}
	}
}

func TestPacketsCarryFlowKey(t *testing.T) {
	tr := Generate(Config{Flows: 16, Packets: 300, Seed: 2})
	for i := range tr.Packets {
		f := tr.FlowOf[i]
		want := tr.FlowKeys[f]
		if string(tr.Packets[i][:nf.KeyLen]) != string(want[:]) {
			t.Fatalf("packet %d key mismatch with flow %d", i, f)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	tr := Generate(Config{Flows: 1000, Packets: 50000, ZipfS: 1.3, Seed: 3})
	counts := map[int32]int{}
	for _, f := range tr.FlowOf {
		counts[f]++
	}
	// The most popular flow should dwarf the median.
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 5000 {
		t.Fatalf("zipf head only %d of 50000", max)
	}
	uni := Generate(Config{Flows: 1000, Packets: 50000, Seed: 3})
	ucounts := map[int32]int{}
	for _, f := range uni.FlowOf {
		ucounts[f]++
	}
	umax := 0
	for _, n := range ucounts {
		if n > umax {
			umax = n
		}
	}
	if umax > 200 {
		t.Fatalf("uniform head %d of 50000, too skewed", umax)
	}
}

func TestOpMixAlternates(t *testing.T) {
	tr := Generate(Config{Flows: 4, Packets: 100, Seed: 4})
	tr.ApplyOpMix([]uint32{7, 9}, []int{1, 1})
	for i := range tr.Packets {
		got := binary.LittleEndian.Uint32(tr.Packets[i][nf.OffOp:])
		want := uint32(7)
		if i%2 == 1 {
			want = 9
		}
		if got != want {
			t.Fatalf("packet %d op %d, want %d", i, got, want)
		}
	}
}

func TestOpMixWeights(t *testing.T) {
	tr := Generate(Config{Flows: 4, Packets: 90, Seed: 5})
	tr.ApplyOpMix([]uint32{1, 2}, []int{2, 1})
	count := map[uint32]int{}
	for i := range tr.Packets {
		count[binary.LittleEndian.Uint32(tr.Packets[i][nf.OffOp:])]++
	}
	if count[1] != 60 || count[2] != 30 {
		t.Fatalf("weighted mix: %v", count)
	}
}

func TestFieldSetters(t *testing.T) {
	var p Packet
	p.SetOp(0xAABB)
	p.SetArg(0xCCDD)
	p.SetTS(0x1122334455667788)
	if binary.LittleEndian.Uint32(p[nf.OffOp:]) != 0xAABB ||
		binary.LittleEndian.Uint32(p[nf.OffArg:]) != 0xCCDD ||
		binary.LittleEndian.Uint64(p[nf.OffTS:]) != 0x1122334455667788 {
		t.Fatal("field setters broken")
	}
	if len(p.Key()) != nf.KeyLen {
		t.Fatal("key slice wrong")
	}
}
