// Adversarial traffic scenarios. Each generator produces a
// phase-structured trace: a benign substrate (same flow model as
// Generate) interleaved with attack windows carrying ground-truth
// per-packet labels, window metadata in arrival-tick terms, and a
// compressed virtual arrival clock inside the windows (bursts). The
// traces are seeded, Clone/Shard-safe (metadata travels with packets),
// and composable with the per-NF op mixes — PrepareTrace only touches
// op/arg/ts fields, never keys or metadata.
package pktgen

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"enetstl/internal/ebpf/maps"
	"enetstl/internal/nf"
)

// ScenarioKind selects an attack scenario family.
type ScenarioKind uint8

// The three scenario families.
const (
	// ScenarioSYNFlood models a spoofed-source DDoS burst: inside each
	// window most packets come from a large pool of near-unique sources,
	// pressuring conntrack/LRU insert paths at burst arrival rate.
	ScenarioSYNFlood ScenarioKind = iota + 1
	// ScenarioChurn models heavy-tail flow churn: flows are born and die
	// continuously, with the birth rate boosted inside windows — the
	// conntrack/timewheel working set never stabilizes.
	ScenarioChurn
	// ScenarioCollision models a hash-collision adversary: attack flows
	// are derived so their keys collide both in the RSS flow hash
	// (stacking one shard) and in the map slot hash (piling into one L1
	// bucket of the bucketed layout, so every insert past its 8 slots
	// takes the L2/L3/stash spill path instead of the wide fast path).
	ScenarioCollision
)

// Scenarios lists every scenario kind, in a stable order.
func Scenarios() []ScenarioKind {
	return []ScenarioKind{ScenarioSYNFlood, ScenarioChurn, ScenarioCollision}
}

func (k ScenarioKind) String() string {
	switch k {
	case ScenarioSYNFlood:
		return "syn-flood"
	case ScenarioChurn:
		return "churn"
	case ScenarioCollision:
		return "hash-collision"
	}
	return fmt.Sprintf("scenario(%d)", int(k))
}

// ScenarioFromString resolves a scenario name as used by CLI flags.
func ScenarioFromString(s string) (ScenarioKind, bool) {
	for _, k := range Scenarios() {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// AttackConfig shapes an adversarial trace. The zero value of every
// tuning field selects a sensible default; only Base and Kind are
// required.
type AttackConfig struct {
	// Base configures the benign substrate (flows, packets, skew, seed).
	Base Config
	// Kind selects the scenario family.
	Kind ScenarioKind

	// Windows is the number of attack windows (default 2), each holding
	// WindowFrac of the trace (default 0.2), evenly spaced.
	Windows    int
	WindowFrac float64
	// Intensity is the attack fraction of in-window packets (default 0.75).
	Intensity float64
	// Burst is the in-window arrival compression: that many packets
	// share one arrival tick (default 8), so a token bucket refilled per
	// tick sees an 8x rate spike without any wall-clock dependence.
	Burst int
	// AttackFlows sizes the adversarial flow pool: spoofed sources for
	// syn-flood (default 512), colliding keys for hash-collision
	// (default 192), the extra-flow budget for churn (default 512).
	AttackFlows int

	// ChurnBirth is the per-packet new-flow probability outside windows
	// (default 0.02); inside windows it is multiplied by ChurnBoost
	// (default 8). Each birth past ChurnActive live extra flows kills
	// the oldest one, so flow death tracks birth pressure; births past
	// the AttackFlows key budget resurrect the oldest dead flow.
	ChurnBirth float64
	ChurnBoost float64
	// ChurnActive caps the live extra-flow working set (default 256).
	ChurnActive int

	// CollisionBuckets is the power-of-two slot-hash modulus the
	// colliding keys target (default 1024): the bucketed map picks its
	// L1 bucket as SlotHash mod a power of two, so keys colliding mod B
	// share an L1 bucket in every table with at most B L1 buckets (and,
	// equivalently, a probe chain in any open-addressed table of at most
	// B slots). CollisionShards is the RSS modulus (default 4): all
	// attack flows land on one shard for any shard count dividing it.
	CollisionBuckets int
	CollisionShards  int
}

func (c AttackConfig) norm() AttackConfig {
	if c.Base.Flows <= 0 {
		c.Base.Flows = 256
	}
	if c.Windows <= 0 {
		c.Windows = 2
	}
	if c.WindowFrac <= 0 || c.WindowFrac > 0.5 {
		c.WindowFrac = 0.2
	}
	if c.Intensity <= 0 || c.Intensity > 1 {
		c.Intensity = 0.75
	}
	if c.Burst <= 0 {
		c.Burst = 8
	}
	if c.AttackFlows <= 0 {
		switch c.Kind {
		case ScenarioCollision:
			c.AttackFlows = 192
		default:
			c.AttackFlows = 512
		}
	}
	if c.ChurnBirth <= 0 {
		c.ChurnBirth = 0.02
	}
	if c.ChurnBoost <= 0 {
		c.ChurnBoost = 8
	}
	if c.ChurnActive <= 0 {
		c.ChurnActive = 256
	}
	if c.CollisionBuckets <= 0 {
		c.CollisionBuckets = 1024
	}
	if c.CollisionShards <= 0 {
		c.CollisionShards = 4
	}
	return c
}

// spoofKey synthesizes attack flow i's 5-tuple in a source range
// (11.x/12.x/13.x) disjoint from the benign 10.x flows.
func spoofKey(base uint32, i int, dst uint32) [nf.KeyLen]byte {
	var k [nf.KeyLen]byte
	binary.LittleEndian.PutUint32(k[0:], base|uint32(i))
	binary.LittleEndian.PutUint32(k[4:], dst)
	binary.LittleEndian.PutUint16(k[8:], uint16(1024+i%60000))
	binary.LittleEndian.PutUint16(k[10:], 443)
	k[12] = 6
	return k
}

// collideKeys derives n flow keys that collide both in the map slot
// hash (mod buckets) and in the RSS flow hash (mod shards), by brute
// force over the dst-address field — the adversary's precomputation,
// aimed at maps.SlotHash, the bucketed core's real placement function,
// not a stand-in. The targets are taken from key 0 so the colliding
// set includes a concrete victim pattern rather than an arbitrary
// constant.
func collideKeys(n, buckets, shards int) [][nf.KeyLen]byte {
	out := make([][nf.KeyLen]byte, 0, n)
	first := spoofKey(0x0d000000, 0, 0)
	slotTarget := maps.SlotHash(first[:]) % uint64(buckets)
	rssTarget := FlowHash(first[:]) % uint32(shards)
	var dst uint32
	for i := 0; len(out) < n; i++ {
		for {
			k := spoofKey(0x0d000000, i, dst)
			dst++
			if maps.SlotHash(k[:])%uint64(buckets) == slotTarget &&
				FlowHash(k[:])%uint32(shards) == rssTarget {
				out = append(out, k)
				break
			}
		}
	}
	return out
}

// GenerateAttack builds an adversarial trace for cfg.Kind. The result
// carries per-packet ground-truth labels, the window list in
// arrival-tick terms, and a burst-compressed arrival clock.
func GenerateAttack(cfg AttackConfig) *Trace {
	cfg = cfg.norm()
	rng := rand.New(rand.NewSource(cfg.Base.Seed ^ int64(cfg.Kind)<<32))
	t := &Trace{
		Packets:  make([]Packet, cfg.Base.Packets),
		FlowKeys: make([][nf.KeyLen]byte, cfg.Base.Flows),
		FlowOf:   make([]int32, cfg.Base.Packets),
		Labels:   make([]uint8, cfg.Base.Packets),
		Arrival:  make([]uint64, cfg.Base.Packets),
		Scenario: cfg.Kind.String(),
	}
	for i := range t.FlowKeys {
		t.FlowKeys[i] = flowKey(i, rng)
	}
	var z *rand.Zipf
	if cfg.Base.ZipfS > 0 {
		z = rand.NewZipf(rng, math.Max(cfg.Base.ZipfS, 1.001), 1, uint64(cfg.Base.Flows-1))
	}
	benign := func() int {
		if z != nil {
			return int(z.Uint64())
		}
		return rng.Intn(cfg.Base.Flows)
	}

	// Attack flow pool. For churn the pool is the extra-flow budget,
	// filled lazily as flows are born; for the floods it is prebuilt.
	var pool []int32 // flow indices into t.FlowKeys
	addFlow := func(k [nf.KeyLen]byte) int32 {
		t.FlowKeys = append(t.FlowKeys, k)
		f := int32(len(t.FlowKeys) - 1)
		pool = append(pool, f)
		return f
	}
	switch cfg.Kind {
	case ScenarioSYNFlood:
		for i := 0; i < cfg.AttackFlows; i++ {
			addFlow(spoofKey(0x0b000000, i, uint32(rng.Int31())))
		}
	case ScenarioCollision:
		for _, k := range collideKeys(cfg.AttackFlows, cfg.CollisionBuckets, cfg.CollisionShards) {
			addFlow(k)
		}
	}

	// Window spans in packet-index space; tick ranges are recorded as
	// the windows are traversed.
	wlen := int(float64(cfg.Base.Packets) * cfg.WindowFrac)
	gap := (cfg.Base.Packets - cfg.Windows*wlen) / (cfg.Windows + 1)
	starts := make([]int, cfg.Windows)
	for w := range starts {
		starts[w] = gap + w*(wlen+gap)
	}

	var (
		tick     uint64
		win      = -1 // index of the window being traversed, -1 outside
		burstCnt int
		churnN   int     // churn flows born so far
		active   []int32 // churn: live extra flows, oldest first
		dead     []int32 // churn: dead extra flows, oldest first
	)
	for i := range t.Packets {
		// Window bookkeeping and the virtual arrival clock.
		inWin := false
		for w, s := range starts {
			if i >= s && i < s+wlen {
				inWin = true
				if win != w {
					win = w
					burstCnt = 0
					tick++
					t.Windows = append(t.Windows, Window{Start: tick, End: tick})
				}
				break
			}
		}
		if i > 0 {
			if !inWin {
				tick++
			} else if burstCnt%cfg.Burst == 0 && burstCnt > 0 {
				tick++
			}
		}
		if inWin {
			burstCnt++
			t.Windows[len(t.Windows)-1].End = tick + 1
		}
		t.Arrival[i] = tick

		// Flow choice.
		f := int32(-1)
		switch cfg.Kind {
		case ScenarioSYNFlood, ScenarioCollision:
			if inWin && rng.Float64() < cfg.Intensity {
				f = pool[rng.Intn(len(pool))]
				t.Labels[i] = 1
			}
		case ScenarioChurn:
			birth := cfg.ChurnBirth
			if inWin {
				birth *= cfg.ChurnBoost
			}
			if rng.Float64() < birth {
				if churnN < cfg.AttackFlows {
					active = append(active, addFlow(spoofKey(0x0c000000, churnN, uint32(rng.Int31()))))
					churnN++
				} else if len(dead) > 0 {
					// Key budget exhausted: resurrect the oldest dead flow
					// (same key, so per-flow ground truth stays consistent).
					active = append(active, dead[0])
					dead = dead[:copy(dead, dead[1:])]
				}
				if len(active) > cfg.ChurnActive {
					dead = append(dead, active[0])
					active = active[:copy(active, active[1:])]
				}
			}
			// Churn traffic mixes the benign substrate with the live extra
			// flows; in-window packets are the labeled churn storm.
			if len(active) > 0 && rng.Float64() < 0.5 {
				f = active[rng.Intn(len(active))]
				if inWin {
					t.Labels[i] = 1
				}
			}
		}
		if f < 0 {
			f = int32(benign())
		}
		t.FlowOf[i] = f
		copy(t.Packets[i][:], t.FlowKeys[f][:])
	}
	return t
}
