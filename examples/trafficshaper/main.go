// Trafficshaper: a Carousel-style egress shaper (paper Case Study 3)
// on the eNetSTL time wheel. Packets arrive in bursts with computed
// release timestamps (pacing each flow to a target rate); the wheel
// releases them as the clock ticks, smoothing the bursts.
//
//	go run ./examples/trafficshaper
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"enetstl/internal/nf"
	"enetstl/internal/nf/timewheel"
	"enetstl/internal/pktgen"
)

func main() {
	const (
		slots    = 256
		nFlows   = 32
		perBurst = 64
		paceGap  = 4 // ticks between a flow's packets
	)
	w, err := timewheel.New(nf.ENetSTL, timewheel.Config{Slots: slots})
	if err != nil {
		log.Fatal(err)
	}
	trace := pktgen.Generate(pktgen.Config{Flows: nFlows, Packets: 0, Seed: 5})

	// Burst arrival: every flow dumps perBurst packets at t=0. The
	// shaper assigns each flow's packet i the deadline i*paceGap, with
	// flows phase-shifted so ticks stay under the drain batch size.
	pkt := make([]byte, nf.PktSize)
	enq := 0
	for f := 0; f < nFlows; f++ {
		for i := 0; i < perBurst; i++ {
			copy(pkt, trace.FlowKeys[f][:])
			binary.LittleEndian.PutUint32(pkt[nf.OffOp:], nf.OpEnqueue)
			binary.LittleEndian.PutUint64(pkt[nf.OffTS:], uint64(i*paceGap+f%paceGap))
			if _, err := w.Process(pkt); err != nil {
				log.Fatalf("enqueue: %v", err)
			}
			enq++
		}
	}
	fmt.Printf("enqueued %d packets from a synchronized burst of %d flows\n\n", enq, nFlows)

	// Drain tick by tick; the release schedule should be flat at
	// nFlows packets per active tick instead of one giant burst.
	deq := make([]byte, nf.PktSize)
	binary.LittleEndian.PutUint32(deq[nf.OffOp:], nf.OpDequeue)
	released := 0
	histogram := map[int]int{}
	for tick := 0; released < enq && tick < slots*4; tick++ {
		// Each Process drains up to DrainBatch; repeat until the slot
		// is empty before the clock moves on (the verdict encodes the
		// drained count).
		total := 0
		v, err := w.Process(deq)
		if err != nil {
			log.Fatalf("dequeue: %v", err)
		}
		total += int(v - timewheel.DrainBase)
		released += total
		if total > 0 {
			histogram[total]++
		}
	}
	fmt.Printf("released %d packets; per-tick release sizes:\n", released)
	for size, n := range histogram {
		fmt.Printf("  %3d pkts/tick x %d ticks\n", size, n)
	}
	fmt.Printf("\nwithout shaping this would have been one burst of %d.\n", enq)
}
