// Sketchmonitor: a heavy-hitter monitoring pipeline on the eNetSTL
// flavours of two sketches — a count-min sketch for per-flow volume
// estimates and HeavyKeeper for top-k elephant detection — replaying a
// zipf-skewed trace and reporting what each sketch saw.
//
//	go run ./examples/sketchmonitor
package main

import (
	"fmt"
	"log"
	"sort"

	"enetstl/internal/nf"
	"enetstl/internal/nf/cmsketch"
	"enetstl/internal/nf/heavykeeper"
	"enetstl/internal/pktgen"
)

func main() {
	cms, err := cmsketch.New(nf.ENetSTL, cmsketch.Config{Rows: 6, Width: 4096})
	if err != nil {
		log.Fatal(err)
	}
	hk, err := heavykeeper.New(nf.ENetSTL, heavykeeper.Config{Rows: 4, Width: 2048})
	if err != nil {
		log.Fatal(err)
	}

	const nPackets = 200000
	trace := pktgen.Generate(pktgen.Config{Flows: 4096, Packets: nPackets, ZipfS: 1.25, Seed: 99})
	for i := range trace.Packets {
		pkt := trace.Packets[i][:]
		if _, err := cms.Process(pkt); err != nil {
			log.Fatalf("cms: %v", err)
		}
		if _, err := hk.Process(pkt); err != nil {
			log.Fatalf("heavykeeper: %v", err)
		}
	}

	truth := map[int32]uint32{}
	for _, f := range trace.FlowOf {
		truth[f]++
	}
	type flowCount struct {
		flow int32
		n    uint32
	}
	var flows []flowCount
	for f, n := range truth {
		flows = append(flows, flowCount{f, n})
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].n > flows[j].n })

	fmt.Printf("replayed %d packets over %d active flows (zipf 1.25)\n\n", nPackets, len(flows))
	fmt.Println("top-10 flows: true count vs count-min estimate vs HeavyKeeper estimate")
	for i := 0; i < 10 && i < len(flows); i++ {
		key := trace.FlowKeys[flows[i].flow][:]
		fmt.Printf("  #%-2d flow %-5d true=%-7d cms=%-7d hk=%d\n",
			i+1, flows[i].flow, flows[i].n, cms.Estimate(key), hk.Estimate(key))
	}

	// Count-min never underestimates; HeavyKeeper tracks elephants
	// closely while shedding mice.
	overCMS, underHK := 0, 0
	for i := 0; i < 50 && i < len(flows); i++ {
		key := trace.FlowKeys[flows[i].flow][:]
		if cms.Estimate(key) < flows[i].n {
			overCMS++
		}
		if hk.Estimate(key) < flows[i].n*7/10 {
			underHK++
		}
	}
	fmt.Printf("\ncount-min underestimates among top-50: %d (must be 0)\n", overCMS)
	fmt.Printf("heavykeeper >30%% underestimates among top-50: %d\n", underHK)
}
