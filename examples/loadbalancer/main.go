// Loadbalancer: a Katran-style L4 load balancer (paper §6.5) built
// from eNetSTL-flavoured NFs: a blocked-cuckoo-hash connection table
// for established flows, with EDF group-based selection for new flows.
// It compares the same pipeline built on pure-eBPF cores ("Origin").
//
//	go run ./examples/loadbalancer
package main

import (
	"fmt"
	"log"
	"time"

	"enetstl/internal/nf"
	"enetstl/internal/nf/cuckooswitch"
	"enetstl/internal/nf/edf"
	"enetstl/internal/pktgen"
)

const (
	nBackends = 16
	nKnown    = 2048 // established connections
)

type lb struct {
	conn *cuckooswitch.Switch
	pick *edf.EDF
	// Counters observed by the control plane.
	established, newFlows int
	perBackend            [nBackends]int
}

func newLB(flavor nf.Flavor, known *pktgen.Trace) (*lb, error) {
	conn, err := cuckooswitch.New(flavor, cuckooswitch.Config{Buckets: 512})
	if err != nil {
		return nil, err
	}
	for i := 0; i < nKnown; i++ {
		conn.Insert(known.FlowKeys[i][:], uint32(100+i%nBackends))
	}
	pick, err := edf.New(flavor, edf.Config{Groups: 256, Targets: nBackends})
	if err != nil {
		return nil, err
	}
	return &lb{conn: conn, pick: pick}, nil
}

// process routes one packet: connection-table hit wins, otherwise EDF
// assigns a backend.
func (l *lb) process(pkt []byte) error {
	v, err := l.conn.Process(pkt)
	if err != nil {
		return err
	}
	if v != cuckooswitch.Miss {
		l.established++
		l.perBackend[(v-100)%nBackends]++
		return nil
	}
	v, err = l.pick.Process(pkt)
	if err != nil {
		return err
	}
	l.newFlows++
	l.perBackend[(v-edf.TargetBase)%nBackends]++
	return nil
}

func main() {
	// 3072 flows: 2048 established, 1024 new.
	trace := pktgen.Generate(pktgen.Config{Flows: 3072, Packets: 300000, ZipfS: 1.05, Seed: 77})

	for _, flavor := range []nf.Flavor{nf.EBPF, nf.ENetSTL} {
		l, err := newLB(flavor, trace)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for i := range trace.Packets {
			if err := l.process(trace.Packets[i][:]); err != nil {
				log.Fatalf("%v: %v", flavor, err)
			}
		}
		dur := time.Since(start)
		pps := float64(len(trace.Packets)) / dur.Seconds()
		fmt.Printf("%-8s %8.0f pps  established=%d new=%d\n",
			flavor, pps, l.established, l.newFlows)
		min, max := l.perBackend[0], l.perBackend[0]
		for _, n := range l.perBackend[1:] {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		fmt.Printf("         per-packet backend load: min=%d max=%d pkts "+
			"(skew reflects the zipf flow sizes, not the assignment)\n", min, max)
	}
}
