// Quickstart: build an eBPF network function that uses eNetSTL, verify
// it, load it, and run traffic through it — the whole lifecycle in ~80
// lines.
//
// The program is a count-min sketch update written as simulated eBPF
// bytecode. Its hot loop is a single eNetSTL kfunc, kf_hash_cnt, which
// fuses the d hash computations with the counter increments (paper
// Listing 2 / Case Study 2).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"enetstl/internal/core"
	"enetstl/internal/ebpf/asm"
	"enetstl/internal/ebpf/maps"
	"enetstl/internal/ebpf/verifier"
	"enetstl/internal/ebpf/vm"
	"enetstl/internal/nf"
	"enetstl/internal/nhash"
	"enetstl/internal/pktgen"
)

const (
	rows  = 4
	width = 1024
)

func main() {
	// 1. A VM stands in for one CPU's eBPF runtime; attaching the
	//    eNetSTL library registers its kfuncs (like loading the module).
	machine := vm.New()
	core.Attach(machine, core.Config{})

	// 2. The sketch lives in a BPF array map: one value holding the
	//    whole rows x width u32 counter matrix.
	counters := maps.Must(maps.NewArray(rows*width*4, 1))
	fd := machine.RegisterMap(counters)

	// 3. The datapath program: look up the matrix, call kf_hash_cnt on
	//    the packet's 16-byte flow key, done.
	b := asm.New()
	b.Mov(asm.R6, asm.R1) // save ctx
	b.StoreImm(asm.R10, -4, 0, 4)
	b.LoadMap(asm.R1, fd)
	b.Mov(asm.R2, asm.R10).AddImm(asm.R2, -4)
	b.Call(vm.HelperMapLookup)
	b.JmpImm(asm.JNE, asm.R0, 0, "ok")
	b.MovImm(asm.R0, int32(vm.XDPAborted))
	b.Exit()
	b.Label("ok")
	b.Mov(asm.R1, asm.R0)          // counter matrix
	b.MovImm(asm.R2, rows*width*4) // its size
	b.Mov(asm.R3, asm.R6)          // key = packet bytes 0..16
	b.MovImm(asm.R4, nf.KeyLen)    //
	b.LoadImm64(asm.R5, rows<<32|width-1)
	b.Kfunc(core.KfHashCnt)
	b.MovImm(asm.R0, int32(vm.XDPPass))
	b.Exit()

	// 4. Verify (null checks, bounds, kfunc metadata) and load.
	prog, err := verifier.LoadAndVerify(machine, "quickstart", b.MustProgram(),
		verifier.Options{CtxSize: nf.PktSize})
	if err != nil {
		log.Fatalf("verifier rejected the program: %v", err)
	}
	fmt.Printf("verified and loaded %q: %d instructions\n", prog.Name(), prog.Len())

	// 5. Replay a skewed trace.
	trace := pktgen.Generate(pktgen.Config{Flows: 256, Packets: 50000, ZipfS: 1.2, Seed: 7})
	for i := range trace.Packets {
		if _, err := machine.Run(prog, trace.Packets[i][:]); err != nil {
			log.Fatalf("packet %d: %v", i, err)
		}
	}

	// 6. Read the sketch from the control plane.
	fmt.Println("estimates for the five most popular flows:")
	counts := map[int32]int{}
	for _, f := range trace.FlowOf {
		counts[f]++
	}
	shown := 0
	for f := int32(0); f < 256 && shown < 5; f++ {
		if counts[f] > 500 {
			est := estimate(counters.Data(), trace.FlowKeys[f][:])
			fmt.Printf("  flow %-3d true=%-6d estimate=%d\n", f, counts[f], est)
			shown++
		}
	}
}

// estimate reads back the count-min estimate using the same hash family
// the kfunc used (internal/nhash).
func estimate(data []byte, key []byte) uint32 {
	min := ^uint32(0)
	for i := 0; i < rows; i++ {
		h := hash32(key, i)
		off := (i*width + int(h&(width-1))) * 4
		c := uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24
		if c < min {
			min = c
		}
	}
	return min
}

func hash32(key []byte, row int) uint32 {
	return nhash.FastHash32(key, nhash.Seed(row))
}
