// Package enetstl_test holds the benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (§6), plus
// the design-choice ablations listed in DESIGN.md §4. Sub-benchmarks
// are named by configuration and flavour, so
//
//	go test -bench=Fig3e -benchmem
//
// prints the series behind one figure, and cmd/enetstl-bench renders
// the same experiments as paper-style tables.
package enetstl_test

import (
	"encoding/binary"
	"fmt"
	"testing"

	"enetstl/internal/apps"
	"enetstl/internal/harness"
	"enetstl/internal/listbuckets"
	"enetstl/internal/memwrapper"
	"enetstl/internal/nf"
	"enetstl/internal/nf/cmsketch"
	"enetstl/internal/nf/cuckoofilter"
	"enetstl/internal/nf/cuckooswitch"
	"enetstl/internal/nf/edf"
	"enetstl/internal/nf/eiffel"
	"enetstl/internal/nf/heavykeeper"
	"enetstl/internal/nf/nitrosketch"
	"enetstl/internal/nf/skiplist"
	"enetstl/internal/nf/timewheel"
	"enetstl/internal/nf/tss"
	"enetstl/internal/nf/vbf"
	"enetstl/internal/pktgen"
)

var allFlavors = []nf.Flavor{nf.Kernel, nf.EBPF, nf.ENetSTL}

// runTrace drives b.N packets from trace through inst.
func runTrace(b *testing.B, inst nf.Instance, trace *pktgen.Trace) {
	b.Helper()
	n := len(trace.Packets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Process(trace.Packets[i%n][:]); err != nil {
			b.Fatal(err)
		}
	}
}

func plainTrace(seed int64) *pktgen.Trace {
	return pktgen.Generate(pktgen.Config{Flows: 1024, Packets: 8192, ZipfS: 1.1, Seed: seed})
}

func queueTrace(seed int64) *pktgen.Trace {
	tr := pktgen.Generate(pktgen.Config{Flows: 256, Packets: 8192, Seed: seed})
	tr.ApplyOpMix([]uint32{nf.OpEnqueue, nf.OpDequeue}, []int{1, 1})
	tr.ApplyArgKeys(0)
	for i := range tr.Packets {
		tr.Packets[i].SetTS(uint64(i / 2))
	}
	return tr
}

// --- Table 1: per-category degradation (representative: the heavy
// configurations also used by Fig. 5) ---

func BenchmarkTable1_Survey(b *testing.B) {
	trace := plainTrace(1)
	for _, flavor := range []nf.Flavor{nf.Kernel, nf.EBPF} {
		cm, err := cmsketch.New(flavor, cmsketch.Config{Rows: 8, Width: 4096})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("sketching/"+flavor.String(), func(b *testing.B) { runTrace(b, cm, trace) })

		hk, err := heavykeeper.New(flavor, heavykeeper.Config{Rows: 4, Width: 4096})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("counting/"+flavor.String(), func(b *testing.B) { runTrace(b, hk, trace) })

		ei, err := eiffel.New(flavor, eiffel.Config{Levels: 3})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("queuing/"+flavor.String(), func(b *testing.B) { runTrace(b, ei, queueTrace(2)) })
	}
}

// --- Fig. 1: behaviour fractions (full vs stripped EBPF variants) ---

func BenchmarkFig1_BehaviorFraction(b *testing.B) {
	trace := plainTrace(3)
	for _, stripped := range []bool{false, true} {
		label := "full"
		if stripped {
			label = "stripped"
		}
		cm, err := cmsketch.New(nf.EBPF, cmsketch.Config{Rows: 8, Width: 4096, Stripped: stripped})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("O2_hashes/"+label, func(b *testing.B) { runTrace(b, cm, trace) })

		ei, err := eiffel.New(nf.EBPF, eiffel.Config{Levels: 2, Stripped: stripped})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("O1_bits/"+label, func(b *testing.B) { runTrace(b, ei, queueTrace(4)) })

		tw, err := timewheel.New(nf.EBPF, timewheel.Config{Slots: 1024, Stripped: stripped})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("O3_lists/"+label, func(b *testing.B) { runTrace(b, tw, queueTrace(5)) })

		ns, err := nitrosketch.New(nf.EBPF, nitrosketch.Config{Rows: 8, Width: 4096, Stripped: stripped})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("O4_random/"+label, func(b *testing.B) { runTrace(b, ns, trace) })
	}
}

// --- Table 2: component micro-benchmarks (native vs software paths) ---

func BenchmarkTable2_Components(b *testing.B) {
	// Carrier NFs dominated by one component each; see also the pure
	// component benchmarks in the internal packages.
	qt := queueTrace(6)
	tr := plainTrace(7)
	type mk struct {
		name  string
		build func(f nf.Flavor) (nf.Instance, error)
		trace *pktgen.Trace
	}
	mks := []mk{
		{"ffs/eiffelL3", func(f nf.Flavor) (nf.Instance, error) {
			q, err := eiffel.New(f, eiffel.Config{Levels: 3})
			if err != nil {
				return nil, err
			}
			return q.Instance, nil
		}, qt},
		{"hash_cnt/cmsD8", func(f nf.Flavor) (nf.Instance, error) {
			s, err := cmsketch.New(f, cmsketch.Config{Rows: 8, Width: 4096})
			if err != nil {
				return nil, err
			}
			return s.Instance, nil
		}, tr},
		{"listbuckets/timewheel", func(f nf.Flavor) (nf.Instance, error) {
			w, err := timewheel.New(f, timewheel.Config{Slots: 1024})
			if err != nil {
				return nil, err
			}
			return w.Instance, nil
		}, qt},
		{"rpool/nitroP1", func(f nf.Flavor) (nf.Instance, error) {
			s, err := nitrosketch.New(f, nitrosketch.Config{Rows: 8, Width: 4096, ProbLog2: 0})
			if err != nil {
				return nil, err
			}
			return s.Instance, nil
		}, tr},
	}
	for _, m := range mks {
		for _, flavor := range []nf.Flavor{nf.EBPF, nf.ENetSTL} {
			inst, err := m.build(flavor)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(m.name+"/"+flavor.String(), func(b *testing.B) { runTrace(b, inst, m.trace) })
		}
	}
}

// --- Fig. 3a/3b: skip-list key-value query ---

func skiplistBench(b *testing.B, mix []uint32, weights []int) {
	for _, load := range []int{1 << 10, 1 << 14} {
		for _, flavor := range []nf.Flavor{nf.Kernel, nf.ENetSTL} {
			s, err := skiplist.New(flavor)
			if err != nil {
				b.Fatal(err)
			}
			trace := pktgen.Generate(pktgen.Config{Flows: load, Packets: 8192, Seed: int64(load)})
			trace.ApplyOpMix(mix, weights)
			pkt := make([]byte, nf.PktSize)
			binary.LittleEndian.PutUint32(pkt[nf.OffOp:], nf.OpUpdate)
			for i := 0; i < load; i++ {
				copy(pkt, trace.FlowKeys[i][:])
				if _, err := s.Process(pkt); err != nil {
					b.Fatal(err)
				}
			}
			b.Run(fmt.Sprintf("load=%d/%s", load, flavor), func(b *testing.B) {
				runTrace(b, s, trace)
			})
		}
	}
}

func BenchmarkFig3a_SkiplistLookup(b *testing.B) {
	skiplistBench(b, []uint32{nf.OpLookup}, []int{1})
}

func BenchmarkFig3b_SkiplistUpdateDelete(b *testing.B) {
	skiplistBench(b, []uint32{nf.OpUpdate, nf.OpDelete}, []int{1, 1})
}

// --- Fig. 3c: cuckoo switch vs load factor ---

func BenchmarkFig3c_CuckooSwitch(b *testing.B) {
	const buckets = 512
	for _, loadPct := range []int{25, 95} {
		n := loadPct * buckets * cuckooswitch.Slots / 100
		trace := pktgen.Generate(pktgen.Config{Flows: n, Packets: 8192, Seed: int64(loadPct)})
		for _, flavor := range allFlavors {
			s, err := cuckooswitch.New(flavor, cuckooswitch.Config{Buckets: buckets})
			if err != nil {
				b.Fatal(err)
			}
			for f := 0; f < n; f++ {
				s.Insert(trace.FlowKeys[f][:], uint32(100+f))
			}
			b.Run(fmt.Sprintf("load=%d%%/%s", loadPct, flavor), func(b *testing.B) {
				runTrace(b, s, trace)
			})
		}
	}
}

// --- Fig. 3d: NitroSketch vs update probability ---

func BenchmarkFig3d_NitroSketch(b *testing.B) {
	trace := plainTrace(8)
	for _, k := range []int{0, 4, 8} {
		for _, flavor := range allFlavors {
			s, err := nitrosketch.New(flavor, nitrosketch.Config{Rows: 8, Width: 4096, ProbLog2: k})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("p=2^-%d/%s", k, flavor), func(b *testing.B) {
				runTrace(b, s, trace)
			})
		}
	}
}

// --- Fig. 3e: count-min sketch vs hash functions ---

func BenchmarkFig3e_CountMin(b *testing.B) {
	trace := plainTrace(9)
	for _, d := range []int{2, 4, 8} {
		for _, flavor := range allFlavors {
			s, err := cmsketch.New(flavor, cmsketch.Config{Rows: d, Width: 4096})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("d=%d/%s", d, flavor), func(b *testing.B) {
				runTrace(b, s, trace)
			})
		}
	}
}

// --- Fig. 3f: time wheel vs slot count ---

func BenchmarkFig3f_TimeWheel(b *testing.B) {
	trace := queueTrace(10)
	for _, slots := range []int{256, 4096} {
		for _, flavor := range allFlavors {
			w, err := timewheel.New(flavor, timewheel.Config{Slots: slots})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("slots=%d/%s", slots, flavor), func(b *testing.B) {
				runTrace(b, w, trace)
			})
		}
	}
}

// --- Fig. 3g: cuckoo filter vs load factor ---

func BenchmarkFig3g_CuckooFilter(b *testing.B) {
	const buckets = 1024
	for _, loadPct := range []int{25, 95} {
		n := loadPct * buckets * cuckoofilter.Slots / 100
		trace := pktgen.Generate(pktgen.Config{Flows: n, Packets: 8192, Seed: int64(loadPct)})
		for _, flavor := range allFlavors {
			f, err := cuckoofilter.New(flavor, cuckoofilter.Config{Buckets: buckets})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				f.Insert(trace.FlowKeys[i][:])
			}
			b.Run(fmt.Sprintf("load=%d%%/%s", loadPct, flavor), func(b *testing.B) {
				runTrace(b, f, trace)
			})
		}
	}
}

// --- Fig. 3h: Eiffel cFFS vs levels ---

func BenchmarkFig3h_Eiffel(b *testing.B) {
	trace := queueTrace(11)
	for _, levels := range []int{1, 2, 3} {
		for _, flavor := range allFlavors {
			q, err := eiffel.New(flavor, eiffel.Config{Levels: levels})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("levels=%d/%s", levels, flavor), func(b *testing.B) {
				runTrace(b, q, trace)
			})
		}
	}
}

// --- §6.2 other cases: EDF, TSS, HeavyKeeper, VBF ---

func BenchmarkFig3x_OtherNFs(b *testing.B) {
	trace := plainTrace(12)
	for _, flavor := range allFlavors {
		e, err := edf.New(flavor, edf.Config{Groups: 1024, Targets: 64})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("edf/"+flavor.String(), func(b *testing.B) { runTrace(b, e, trace) })

		c, err := tss.New(flavor, tss.Config{Spaces: 8, Slots: 1024})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 512; i++ {
			c.Insert(trace.FlowKeys[i][:], i%8, uint32(i%7+1), uint32(i))
		}
		b.Run("tss/"+flavor.String(), func(b *testing.B) { runTrace(b, c, trace) })

		h, err := heavykeeper.New(flavor, heavykeeper.Config{Rows: 4, Width: 4096})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("heavykeeper/"+flavor.String(), func(b *testing.B) { runTrace(b, h, trace) })

		v, err := vbf.New(flavor, vbf.Config{Bits: 16384, Hashes: 4})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 512; i++ {
			v.Insert(trace.FlowKeys[i][:], i%32)
		}
		b.Run("vbf/"+flavor.String(), func(b *testing.B) { runTrace(b, v, trace) })
	}
}

// --- Fig. 4 / Fig. 5: latency and per-packet time (Fig. 4 adds the
// constant wire term; the processing term below is what differs) ---

func BenchmarkFig4Fig5_PerPacketTime(b *testing.B) {
	trace := plainTrace(13)
	for _, flavor := range allFlavors {
		s, err := cmsketch.New(flavor, cmsketch.Config{Rows: 8, Width: 4096})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("cmsketch/"+flavor.String(), func(b *testing.B) { runTrace(b, s, trace) })

		cs, err := cuckooswitch.New(flavor, cuckooswitch.Config{Buckets: 512})
		if err != nil {
			b.Fatal(err)
		}
		for f := 0; f < 1024; f++ {
			cs.Insert(trace.FlowKeys[f][:], uint32(100+f))
		}
		b.Run("cuckooswitch/"+flavor.String(), func(b *testing.B) { runTrace(b, cs, trace) })
	}
}

// BenchmarkFig4_LatencyDistribution measures the full latency path once
// per run (the harness adds the constant wire term).
func BenchmarkFig4_LatencyDistribution(b *testing.B) {
	trace := pktgen.Generate(pktgen.Config{Flows: 1024, Packets: 2048, ZipfS: 1.1, Seed: 14})
	for _, flavor := range allFlavors {
		s, err := cmsketch.New(flavor, cmsketch.Config{Rows: 8, Width: 4096})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("cmsketch/"+flavor.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.Latency(s, trace); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 6: interface ablation ---

func BenchmarkFig6_InterfaceAblation(b *testing.B) {
	trace := pktgen.Generate(pktgen.Config{Flows: 3800, Packets: 8192, Seed: 15})
	for _, low := range []bool{false, true} {
		label := "high"
		if low {
			label = "low"
		}
		cs, err := cuckooswitch.New(nf.ENetSTL, cuckooswitch.Config{Buckets: 512, LowLevel: low})
		if err != nil {
			b.Fatal(err)
		}
		for f := 0; f < 3800; f++ {
			cs.Insert(trace.FlowKeys[f][:], uint32(100+f))
		}
		b.Run("COMP/"+label, func(b *testing.B) { runTrace(b, cs, trace) })

		cm, err := cmsketch.New(nf.ENetSTL, cmsketch.Config{Rows: 8, Width: 4096, LowLevel: low})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("HASH/"+label, func(b *testing.B) { runTrace(b, cm, trace) })
	}
}

// --- Fig. 7 is app-level; see internal/apps and cmd/enetstl-bench
// -experiment fig7. Here: the two heaviest apps. ---

func BenchmarkFig7_RealWorld(b *testing.B) {
	benchApp := func(name string, enetstl bool, inst nf.Instance, trace *pktgen.Trace) {
		label := "origin"
		if enetstl {
			label = "enetstl"
		}
		b.Run(name+"/"+label, func(b *testing.B) { runTrace(b, inst, trace) })
	}
	trace := plainTrace(16)
	for _, enetstl := range []bool{false, true} {
		kat, err := newKatran(enetstl, trace)
		if err != nil {
			b.Fatal(err)
		}
		benchApp("katran", enetstl, kat, trace)
		ss, err := newSketchSuite(enetstl)
		if err != nil {
			b.Fatal(err)
		}
		benchApp("sketches", enetstl, ss, trace)
	}
}

func newKatran(enetstl bool, trace *pktgen.Trace) (nf.Instance, error) {
	a, err := apps.NewKatran(enetstl, trace.FlowKeys)
	if err != nil {
		return nil, err
	}
	return a, nil
}

func newSketchSuite(enetstl bool) (nf.Instance, error) {
	a, err := apps.NewSketchSuite(enetstl)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// --- DESIGN.md §4 ablations ---

// BenchmarkAblation_LazyVsEagerSafety compares the memory wrapper's
// lazy safety checking against eager per-traversal validation (§4.2).
func BenchmarkAblation_LazyVsEagerSafety(b *testing.B) {
	build := func(eager bool) (*memwrapper.Proxy, *memwrapper.Node) {
		p := memwrapper.Must(memwrapper.NewProxy(32, 1))
		p.Eager = eager
		head, _ := p.Alloc(1)
		p.SetOwner(head)
		cur := head
		for i := 0; i < 64; i++ {
			n, _ := p.Alloc(1)
			p.SetOwner(n)
			p.Connect(cur, 0, n)
			p.Release(n)
			cur = n
		}
		return p, head
	}
	for _, eager := range []bool{false, true} {
		label := "lazy"
		if eager {
			label = "eager"
		}
		p, head := build(eager)
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cur := head
				held := false
				for {
					next, err := p.Next(cur, 0)
					if err != nil {
						b.Fatal(err)
					}
					if next == nil {
						break
					}
					if held {
						p.Release(cur)
					}
					cur, held = next, true
				}
				if held {
					p.Release(cur)
				}
			}
		})
	}
}

// BenchmarkAblation_ListBucketsLocking compares list-buckets (lock
// free) against the lock-coupled BPF linked lists via the time wheel.
func BenchmarkAblation_ListBucketsLocking(b *testing.B) {
	trace := queueTrace(17)
	for _, flavor := range []nf.Flavor{nf.EBPF, nf.ENetSTL} {
		w, err := timewheel.New(flavor, timewheel.Config{Slots: 1024})
		if err != nil {
			b.Fatal(err)
		}
		label := "bpf_list_locked"
		if flavor == nf.ENetSTL {
			label = "listbuckets_lockfree"
		}
		b.Run(label, func(b *testing.B) { runTrace(b, w, trace) })
	}
}

// BenchmarkComponent_ListBucketsNative measures raw list-buckets ops.
func BenchmarkComponent_ListBucketsNative(b *testing.B) {
	lb := listbuckets.Must(listbuckets.New(1024, 16, 4096))
	var e [16]byte
	b.Run("push_pop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lb.PushBack(i&1023, e[:])
			lb.PopFront(i&1023, e[:])
		}
	})
}
